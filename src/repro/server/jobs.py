"""The job lifecycle: a typed state machine, journaled crash-safely.

Every submission becomes a :class:`Job` that moves through::

    QUEUED ──────────────► RUNNING ──► DONE
       │                   │  │  ▲
       │                   │  │  └── (crash retry: RUNNING → QUEUED)
       ├──► CANCELLED ◄────┘  ├──► FAILED
       │    (client cancel,   └──► TIMED_OUT
       │     load shedding)

    DONE / FAILED / CANCELLED / TIMED_OUT are terminal: no exits.

Transitions are validated (:data:`VALID_TRANSITIONS`); an illegal one
raises :class:`JobStateError` instead of silently corrupting the
service's view of a job.  ``RUNNING → QUEUED`` is the crash-retry edge:
when a worker process dies the supervisor re-queues the job (bounded by
the poison cap) rather than losing it.

Every submission and every transition is appended to a
:class:`JobJournal` — the same crash-safe JSONL discipline as
:class:`repro.resilience.journal.RunJournal` (single atomic append +
fsync per line, partial trailing line truncated on load) — so a
SIGKILLed server rebuilds its exact job table on restart and resumes
in-flight work.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.log import get_logger
from repro.resilience.errors import ReproError, ResultCorruption

log = get_logger("server.jobs")

FORMAT_VERSION = 1


class JobStateError(ReproError, ValueError):
    """An illegal job state transition (names both states and the job)."""


class JobState(str, Enum):
    """Where a job is in its lifecycle (see the module diagram)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    (JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.TIMED_OUT)
)

#: The legal edges of the lifecycle graph.
VALID_TRANSITIONS: Dict[JobState, frozenset] = {
    JobState.QUEUED: frozenset((JobState.RUNNING, JobState.CANCELLED)),
    JobState.RUNNING: frozenset(
        (
            JobState.QUEUED,  # crash retry (worker died; bounded re-queue)
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMED_OUT,
        )
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.TIMED_OUT: frozenset(),
}


def _utc_now() -> float:
    return time.time()


@dataclass
class Job:
    """One accepted submission and its current lifecycle position.

    Args:
        job_id: the service-assigned stable id (``job-<seq>``).
        fingerprint: the submission's config fingerprint (dedup key).
        payload: the validated submission body (scenario/spec +
            overrides), sufficient to rebuild the worker's config.
        priority: higher runs first; ties run in submission order.
            Priority is also the *shedding* order — under memory
            pressure the lowest-priority queued job goes first.
        timeout: per-job wall-clock budget in seconds (None = no limit).
        state: current :class:`JobState`.
        attempts: worker launches so far (crash retries increment it).
        error: terminal diagnostic (FAILED/TIMED_OUT/CANCELLED reason).
        result: the worker's summary payload once DONE.
    """

    job_id: str
    fingerprint: str
    payload: Dict[str, Any]
    priority: int = 0
    timeout: Optional[float] = None
    state: JobState = JobState.QUEUED
    attempts: int = 0
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    created_at: float = field(default_factory=_utc_now)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, to: JobState) -> None:
        """Move to ``to``, enforcing the lifecycle graph.

        Raises:
            JobStateError: when the edge is not in
                :data:`VALID_TRANSITIONS`.
        """
        if to not in VALID_TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {to.value} (legal: "
                f"{sorted(s.value for s in VALID_TRANSITIONS[self.state])})"
            )
        self.state = to
        now = _utc_now()
        if to is JobState.RUNNING and self.started_at is None:
            self.started_at = now
        if to in TERMINAL_STATES:
            self.finished_at = now

    def as_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "payload": self.payload,
            "priority": self.priority,
            "timeout": self.timeout,
            "state": self.state.value,
            "attempts": self.attempts,
            "error": self.error,
            "result": self.result,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Job":
        data = dict(payload)
        data["state"] = JobState(data["state"])
        return cls(**data)

    def public_view(self) -> Dict[str, Any]:
        """The status document the HTTP API serves for this job."""
        view = self.as_dict()
        view["terminal"] = self.terminal
        if self.started_at is not None:
            end = self.finished_at if self.finished_at is not None else _utc_now()
            view["runtime_seconds"] = round(end - self.started_at, 3)
        return view


class JobJournal:
    """Crash-safe JSONL journal of every job event (see module doc).

    Line kinds: one ``meta`` header, then interleaved ``submitted``
    (full job record) and ``state`` (job_id + new state + bookkeeping)
    lines.  Loading replays them into the latest job table; recovery
    semantics (what to do with non-terminal jobs) belong to the service,
    not the journal.

    Args:
        path: the journal file; created (with parents) when absent.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.jobs: Dict[str, Job] = {}
        self._submissions = 0
        if self.path.exists():
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._append(
                {"kind": "meta", "format_version": FORMAT_VERSION}
            )

    # -- writing ---------------------------------------------------------

    def _append(self, entry: Dict[str, Any]) -> None:
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self.path.open("a") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def next_job_id(self) -> str:
        """The id the next :meth:`record_submitted` job should carry."""
        return f"job-{self._submissions + 1:06d}"

    def record_submitted(self, job: Job) -> None:
        """Journal a brand-new job (its full record)."""
        self._append({"kind": "submitted", "job": job.as_dict()})
        self.jobs[job.job_id] = job
        self._submissions += 1

    def record_state(self, job: Job) -> None:
        """Journal a transition (the job has already moved)."""
        self._append(
            {
                "kind": "state",
                "job_id": job.job_id,
                "state": job.state.value,
                "attempts": job.attempts,
                "error": job.error,
                "result": job.result,
                "started_at": job.started_at,
                "finished_at": job.finished_at,
            }
        )
        self.jobs[job.job_id] = job

    # -- loading ---------------------------------------------------------

    def _load(self) -> None:
        raw = self.path.read_bytes().decode("utf-8", errors="replace")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        parsed: List[Dict[str, Any]] = []
        for index, line in enumerate(lines):
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if index == len(lines) - 1:
                    # Crash mid-append: the event it described never
                    # took effect; truncate and move on (same contract
                    # as RunJournal).
                    log.warning(
                        "job journal has a partial trailing line; truncating",
                        extra={"journal": str(self.path), "kept_lines": index},
                    )
                    self._truncate_to(lines[:index])
                    break
                raise ResultCorruption(
                    f"{self.path}: corrupt job-journal line {index + 1}; "
                    f"the file is damaged mid-stream — move it aside and "
                    f"restart the server with a fresh journal"
                ) from exc
        if not parsed:
            raise ResultCorruption(
                f"{self.path}: job journal has no readable lines; delete it "
                f"and restart"
            )
        meta = parsed[0]
        if meta.get("kind") != "meta" or meta.get("format_version") != FORMAT_VERSION:
            raise ResultCorruption(
                f"{self.path}: not a version-{FORMAT_VERSION} job journal "
                f"(header {meta!r})"
            )
        for entry in parsed[1:]:
            kind = entry.get("kind")
            if kind == "submitted":
                job = Job.from_dict(entry["job"])
                self.jobs[job.job_id] = job
                self._submissions += 1
            elif kind == "state":
                job = self.jobs.get(entry["job_id"])
                if job is None:
                    raise ResultCorruption(
                        f"{self.path}: state line for unknown job "
                        f"{entry['job_id']!r}"
                    )
                job.state = JobState(entry["state"])
                job.attempts = int(entry.get("attempts", job.attempts))
                job.error = entry.get("error")
                job.result = entry.get("result")
                job.started_at = entry.get("started_at")
                job.finished_at = entry.get("finished_at")
            else:
                raise ResultCorruption(
                    f"{self.path}: unexpected job-journal entry kind {kind!r}"
                )
        log.info(
            "job journal loaded",
            extra={"journal": str(self.path), "jobs": len(self.jobs)},
        )

    def _truncate_to(self, keep_lines: List[str]) -> None:
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text("".join(line + "\n" for line in keep_lines))
        os.replace(tmp, self.path)

    # -- queries ---------------------------------------------------------

    def non_terminal(self) -> List[Job]:
        """Jobs the last process left QUEUED or RUNNING (recovery input),
        in submission order."""
        return [
            job
            for job in sorted(self.jobs.values(), key=lambda j: j.job_id)
            if not job.terminal
        ]

    def by_fingerprint(self, fingerprint: str) -> Optional[Job]:
        """The most recent job with this fingerprint that is still
        deliverable (queued, running, or done) — the dedup probe.

        Jobs that failed, timed out, or were cancelled do not block a
        resubmission of the same configuration.
        """
        candidates = [
            job
            for job in self.jobs.values()
            if job.fingerprint == fingerprint
            and job.state in (JobState.QUEUED, JobState.RUNNING, JobState.DONE)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda j: j.job_id)

    def __len__(self) -> int:
        return len(self.jobs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobJournal({str(self.path)!r}, jobs={len(self.jobs)})"
