"""Worker supervision: one job driven to a terminal state, whatever dies.

The supervisor owns the *process* half of the lifecycle: it launches
``python -m repro.server.worker <job_dir>`` for each attempt, maps exit
codes back onto :class:`~repro.server.jobs.JobState` transitions, and
decides whether a dead worker means *retry* or *poison*:

- exit 0 — DONE (``result.json`` is read back onto the job);
- exit 3 / 4 — cooperative CANCELLED / TIMED_OUT;
- exit 2 — the job directory itself is bad: FAILED immediately, no
  retry (retrying a malformed input can only fail again);
- anything else (uncaught exception, SIGKILL, injected crash) — a
  *crash*: the job goes RUNNING → QUEUED and is relaunched after a
  capped decorrelated-jitter backoff
  (:func:`repro.resilience.retry.backoff_delays`), until
  ``max_attempts`` is spent — then the job is **poisoned**: FAILED with
  a diagnostic instead of retry-looping forever.

Timeouts are enforced twice, deliberately.  The worker carries a
cooperative deadline token (checked between rounds); the supervisor
*also* arms a wall-clock watchdog slightly past the deadline, trips the
job's cancel file with reason ``timeout``, grants a grace period, and
kills the process if it still won't die — so even a worker stuck inside
one round cannot hold a slot forever.  The budget spans *all* attempts
of a job (a crash-looping job does not get a fresh clock per retry).

The supervisor never touches the journal directly: every transition is
reported through the ``record`` callback so the owning service applies
its single-writer journaling discipline.
"""

from __future__ import annotations

import asyncio
import os
import random
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.obs.log import get_logger, logging_environment
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanTracer, TraceContext, trace_id_for_job
from repro.resilience.cancel import FileToken
from repro.resilience.retry import backoff_delays
from repro.server import worker as worker_mod
from repro.server.jobs import Job, JobState

log = get_logger("server.supervisor")

#: Extra wall-clock slack the watchdog grants past the cooperative
#: deadline before tripping the cancel file itself.
WATCHDOG_SLACK_SECONDS = 2.0

#: Attempt-latency histogram bounds (seconds): jobs run seconds to
#: many minutes, not the sub-second TIME_BUCKETS defaults.
ATTEMPT_SECONDS_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0, 600.0, 1800.0,
)

#: The per-job trace shard directory name (under the job dir).
TRACE_DIR_NAME = "trace"


def worker_environment(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """The subprocess environment for a worker.

    Ensures the worker can ``import repro`` even when the service was
    started from an installed checkout with no PYTHONPATH: the package
    root is derived from ``repro.__file__`` and prepended.
    """
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    parts = [src_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    if extra:
        env.update(extra)
    return env


class WorkerSupervisor:
    """Drives jobs to terminal states across worker process attempts.

    Args:
        max_attempts: worker launches before a crashing job is poisoned.
        backoff_base: first-retry delay in seconds.
        backoff_cap: upper bound on any retry delay.
        grace_seconds: how long a timed-out worker gets to exit
            cooperatively before SIGKILL.
        env: extra environment for workers (fault-injection knobs in
            drills); merged over :func:`worker_environment`.
        rng: injectable randomness for the jitter schedule (tests pin
            it; production uses a fresh :class:`random.Random`).
        clock: injectable monotonic clock.
        metrics: optional registry for attempt-latency histograms and
            crash-retry counters (the owning service shares its own).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 8.0,
        grace_seconds: float = 2.0,
        env: Optional[Dict[str, str]] = None,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.grace_seconds = grace_seconds
        self.env = worker_environment(env)
        self.rng = rng if rng is not None else random.Random()
        self.clock = clock
        self.metrics = metrics
        #: Live worker processes by job id (for shutdown).
        self.processes: Dict[str, asyncio.subprocess.Process] = {}

    # -- public API ------------------------------------------------------

    async def run_to_terminal(
        self,
        job: Job,
        job_dir: Path,
        record: Callable[[Job], None],
    ) -> None:
        """Run ``job`` until it reaches a terminal state.

        ``job`` must currently be QUEUED; ``record`` is called after
        every transition (the service's journaling hook).

        The whole drive — every attempt, every backoff — runs inside
        one ``supervise`` span; the trace context (deterministic trace
        id, shard directory) rides the worker environment so the worker
        and its selection-pool processes write shards into the same
        trace (``repro trace merge`` stitches them).
        """
        deadline_at: Optional[float] = (
            self.clock() + job.timeout if job.timeout is not None else None
        )
        delays = self._delays()
        trace = TraceContext(
            trace_id=trace_id_for_job(job.job_id),
            trace_dir=str(job_dir / TRACE_DIR_NAME),
            parent_span_id="supervise",
            process="server",
        )
        tracer = SpanTracer(metadata={**trace.metadata(), "job_id": job.job_id})
        try:
            with tracer.span("supervise", cat="server", job=job.job_id):
                await self._drive(
                    job, job_dir, record, deadline_at, delays, trace, tracer
                )
        finally:
            try:
                tracer.write_jsonl(trace.shard_path("server"))
            except OSError:  # pragma: no cover - tracing is advisory
                log.warning(
                    "could not write server trace shard",
                    extra={"job": job.job_id},
                )

    async def _drive(
        self,
        job: Job,
        job_dir: Path,
        record: Callable[[Job], None],
        deadline_at: Optional[float],
        delays: List[float],
        trace: TraceContext,
        tracer: SpanTracer,
    ) -> None:
        while True:
            if self._cancel_requested(job_dir):
                job.error = self._cancel_reason(job_dir)
                job.transition(JobState.CANCELLED)
                record(job)
                return

            job.attempts += 1
            job.transition(JobState.RUNNING)
            record(job)

            remaining = None
            if deadline_at is not None:
                remaining = deadline_at - self.clock()
                if remaining <= 0:
                    job.error = f"wall-clock budget of {job.timeout}s exhausted"
                    job.transition(JobState.TIMED_OUT)
                    record(job)
                    return

            started = self.clock()
            with tracer.span(
                "attempt", cat="server", job=job.job_id, attempt=job.attempts
            ):
                returncode = await self._run_attempt(
                    job, job_dir, remaining, trace=trace
                )
            if self.metrics is not None:
                self.metrics.histogram(
                    "repro_attempt_seconds", bounds=ATTEMPT_SECONDS_BUCKETS
                ).observe(self.clock() - started)
            terminal = self._apply_exit(job, job_dir, returncode)
            if terminal:
                record(job)
                return

            # Crash: bounded retry with capped decorrelated jitter.
            if job.attempts >= self.max_attempts:
                job.error = (
                    f"poisoned: worker crashed {job.attempts} times "
                    f"(last exit code {returncode})"
                )
                job.transition(JobState.FAILED)
                record(job)
                log.warning(
                    "job poisoned",
                    extra={"job": job.job_id, "attempts": job.attempts},
                )
                return

            if self.metrics is not None:
                self.metrics.counter("repro_crash_retries_total").inc()
            job.transition(JobState.QUEUED)
            record(job)
            delay = delays[job.attempts - 1]
            log.info(
                "worker crashed; retrying",
                extra={
                    "job": job.job_id,
                    "exit_code": returncode,
                    "attempt": job.attempts,
                    "backoff_seconds": round(delay, 3),
                },
            )
            await asyncio.sleep(delay)

    async def shutdown(self) -> None:
        """Kill any still-live workers (service shutdown path)."""
        procs = list(self.processes.values())
        for proc in procs:
            if proc.returncode is None:
                proc.kill()
        for proc in procs:
            try:
                await proc.wait()
            except ProcessLookupError:  # pragma: no cover - already gone
                pass
        self.processes.clear()

    # -- internals -------------------------------------------------------

    def _delays(self) -> List[float]:
        if self.max_attempts == 1:
            return []
        return list(
            backoff_delays(
                self.max_attempts,
                base_delay=self.backoff_base,
                max_delay=self.backoff_cap,
                jitter="decorrelated",
                rng=self.rng,
            )
        )

    @staticmethod
    def _cancel_requested(job_dir: Path) -> bool:
        return (job_dir / "cancel").exists()

    @staticmethod
    def _cancel_reason(job_dir: Path) -> str:
        return FileToken(job_dir / "cancel").reason or "cancelled"

    async def _run_attempt(
        self,
        job: Job,
        job_dir: Path,
        remaining: Optional[float],
        trace: Optional[TraceContext] = None,
    ) -> int:
        """One worker launch; returns its exit code (external timeout
        included: a watchdog-killed worker reports as timed out).

        The child environment carries the parent's logging mode
        (:func:`logging_environment`) and, when supervised under a
        trace, the job's :class:`TraceContext` — both read back by the
        worker at startup.
        """
        args = [
            sys.executable,
            "-m",
            "repro.server.worker",
            str(job_dir),
            "--attempt",
            str(job.attempts),
        ]
        if remaining is not None:
            args.extend(["--deadline", f"{remaining:.3f}"])
        env = dict(self.env)
        env.update(logging_environment())
        if trace is not None:
            env.update(
                trace.child(f"worker-a{job.attempts}").to_env()
            )
        log_path = job_dir / "worker.log"
        with log_path.open("ab") as log_handle:
            proc = await asyncio.create_subprocess_exec(
                *args,
                stdout=log_handle,
                stderr=log_handle,
                env=env,
            )
            self.processes[job.job_id] = proc
            try:
                if remaining is None:
                    return await proc.wait()
                try:
                    return await asyncio.wait_for(
                        proc.wait(), timeout=remaining + WATCHDOG_SLACK_SECONDS
                    )
                except asyncio.TimeoutError:
                    return await self._enforce_timeout(job, job_dir, proc)
            finally:
                self.processes.pop(job.job_id, None)

    async def _enforce_timeout(
        self, job: Job, job_dir: Path, proc: asyncio.subprocess.Process
    ) -> int:
        """The watchdog path: cancel file → grace → SIGKILL."""
        log.warning(
            "worker exceeded deadline; tripping cancel file",
            extra={"job": job.job_id},
        )
        FileToken(job_dir / "cancel").trip("timeout")
        try:
            return await asyncio.wait_for(proc.wait(), timeout=self.grace_seconds)
        except asyncio.TimeoutError:
            log.warning(
                "worker ignored cancel; killing", extra={"job": job.job_id}
            )
            proc.kill()
            await proc.wait()
            return worker_mod.EXIT_TIMED_OUT

    def _apply_exit(self, job: Job, job_dir: Path, returncode: int) -> bool:
        """Map an exit code onto the job; True when the job is terminal."""
        if returncode == worker_mod.EXIT_DONE:
            job.result = self._read_result(job_dir)
            job.transition(JobState.DONE)
            return True
        if returncode == worker_mod.EXIT_CANCELLED:
            job.error = self._cancel_reason(job_dir)
            job.transition(JobState.CANCELLED)
            return True
        if returncode == worker_mod.EXIT_TIMED_OUT:
            job.error = f"wall-clock budget of {job.timeout}s exhausted"
            job.transition(JobState.TIMED_OUT)
            return True
        if returncode == worker_mod.EXIT_BAD_JOB:
            job.error = (
                "worker rejected the job directory (see worker.log); "
                "not retrying a malformed input"
            )
            job.transition(JobState.FAILED)
            return True
        return False  # crash — caller decides retry vs poison

    @staticmethod
    def _read_result(job_dir: Path) -> Optional[dict]:
        import json

        result_path = job_dir / "result.json"
        try:
            return json.loads(result_path.read_text())
        except (OSError, ValueError):  # pragma: no cover - defensive
            log.warning(
                "DONE worker left no readable result.json",
                extra={"job_dir": str(job_dir)},
            )
            return None
