"""The worker process: one job, run to a terminal state, resumably.

The supervisor launches ``python -m repro.server.worker <job_dir>`` per
attempt.  The job directory is the whole contract:

- ``job.json`` (in) — the job id, the validated submission payload, and
  the obs-store path;
- ``events.jsonl`` (out) — the streamed round history, events-JSONL
  format, appended round by round with the journal's atomic-append +
  fsync discipline;
- ``cancel`` (in, optional) — the supervisor's kill switch, polled by
  the engine through a :class:`~repro.resilience.cancel.FileToken`;
- ``result.json`` (out, on success) — the metrics summary, written
  atomically.

**Crash recovery is append-only replay.**  On start the worker loads
any existing ``events.jsonl``, truncates a partial trailing line (the
signature of a SIGKILL mid-append), and counts the completed rounds.
The engine then re-runs the *same* seeded simulation — bit-identical by
construction — while the :class:`ResumingRoundWriter` suppresses rounds
already on disk and appends only the new ones.  The result: a killed
and restarted job produces an events file with exactly one record per
round — no duplicates, no losses — identical to an uninterrupted run up
to wall-clock timing telemetry (``selector_wall_time`` and friends,
which no replay can reproduce; :func:`canonical_round` strips them for
comparisons).

Exit codes are the worker half of the lifecycle state machine:

====  =========================================================
0     DONE (result.json written, obs store ingested)
3     CANCELLED (cooperative, via the cancel file)
4     TIMED_OUT (cooperative, via the wall-clock deadline token)
2     invalid job dir / unparseable job.json (poison — do not retry)
13    injected crash (fault drills; see REPRO_SERVER_FAULT_CRASH_P)
else  crash (uncaught exception, killed, …) — supervisor retries
====  =========================================================

Fault injection (chaos drills): ``REPRO_SERVER_FAULT_CRASH_P`` sets a
per-round crash probability; the draw stream is seeded from
``REPRO_SERVER_FAULT_SEED`` x job id x attempt, so a drill is exactly
reproducible yet each retry crashes (or survives) at a different round.
The crash fires *after* the round is persisted — the worst case for
duplicate detection, which is exactly what the recovery tests want.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from pathlib import Path
from typing import List, Optional, Union

from repro.obs.log import configure_logging_from_env, get_logger
from repro.resilience.cancel import (
    CompositeToken,
    DeadlineToken,
    FileToken,
)
from repro.resilience.errors import OperationCancelled, ResultCorruption
from repro.io.events import _meta_payload, _round_payload

log = get_logger("server.worker")

#: Exit codes (see module docstring).
EXIT_DONE = 0
EXIT_BAD_JOB = 2
EXIT_CANCELLED = 3
EXIT_TIMED_OUT = 4
EXIT_INJECTED_CRASH = 13

CRASH_P_ENV = "REPRO_SERVER_FAULT_CRASH_P"
CRASH_SEED_ENV = "REPRO_SERVER_FAULT_SEED"

#: Round-payload keys that carry wall-clock timings — the only fields a
#: deterministic replay cannot reproduce.
_TIMING_PERF_KEYS = frozenset(("selector_wall_time",))
_TIMING_METRIC_PREFIXES = ("selector_seconds",)


def canonical_round(payload: dict) -> dict:
    """A round record with its wall-clock timing telemetry removed.

    The simulation content of a round (selections, rewards, coverage,
    budget) is bit-reproducible across replays; the timings are not.
    Recovery tests compare canonical rounds, so "no duplicate or lost
    round events" is checked on exactly the fields that must match.
    """
    clean = dict(payload)
    if isinstance(clean.get("perf"), dict):
        clean["perf"] = {
            k: v
            for k, v in clean["perf"].items()
            if k not in _TIMING_PERF_KEYS
        }
    if isinstance(clean.get("metrics"), dict):
        clean["metrics"] = {
            k: v
            for k, v in clean["metrics"].items()
            if not k.startswith(_TIMING_METRIC_PREFIXES)
        }
    return clean


class ResumingRoundWriter:
    """An events-JSONL writer that survives (and resumes after) SIGKILL.

    Differences from :class:`repro.io.events.RoundStreamWriter`:

    - appends with per-line flush + fsync, so a completed round is
      durable the moment the observer returns;
    - on an existing file it truncates a partial trailing line, counts
      the completed rounds, and *skips* re-writing them when the
      deterministic engine replays — append-only resume;
    - a mid-stream corrupt line raises
      :class:`~repro.resilience.errors.ResultCorruption` (the file is
      damaged, not merely crashed).

    Args:
        path: the events file.
        world: the (regenerated, identical) world for the meta line.
    """

    def __init__(self, path: Union[str, Path], world) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.completed_rounds = self._recover()
        if self.completed_rounds == 0 and not self.path.exists():
            with self.path.open("w") as handle:
                handle.write(json.dumps(_meta_payload(world, 0)) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        self.rounds_written = 0
        self._handle = self.path.open("a")

    def _recover(self) -> int:
        """Truncate a partial tail; return the completed round count."""
        if not self.path.exists():
            return 0
        raw = self.path.read_bytes().decode("utf-8", errors="replace")
        lines = raw.split("\n")
        trailing = lines.pop() if lines else ""
        if trailing:
            # No final newline: the last append was cut mid-line.
            log.warning(
                "events file has a partial trailing line; truncating",
                extra={"events": str(self.path)},
            )
            self._rewrite(lines)
        completed = 0
        for index, line in enumerate(lines):
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ResultCorruption(
                    f"{self.path}: corrupt events line {index + 1}; the "
                    f"file is damaged mid-stream — delete it and resubmit "
                    f"the job"
                ) from exc
            if index == 0:
                if payload.get("kind") != "meta":
                    raise ResultCorruption(
                        f"{self.path}: first line is not an events meta line"
                    )
                continue
            if payload.get("kind") != "round":
                raise ResultCorruption(
                    f"{self.path}: unexpected line kind "
                    f"{payload.get('kind')!r} at line {index + 1}"
                )
            expected = completed + 1
            if payload.get("round_no") != expected:
                raise ResultCorruption(
                    f"{self.path}: round sequence broken at line "
                    f"{index + 1} (expected round {expected}, got "
                    f"{payload.get('round_no')!r})"
                )
            completed += 1
        return completed

    def _rewrite(self, keep_lines: List[str]) -> None:
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text("".join(line + "\n" for line in keep_lines))
        os.replace(tmp, self.path)

    def __call__(self, record) -> None:
        if record.round_no <= self.completed_rounds:
            return  # replayed round, already durable — append-only resume
        line = json.dumps(_round_payload(record)) + "\n"
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.rounds_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResumingRoundWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _CrashInjector:
    """A round observer that kills the process with probability p.

    Deterministic per (seed, job_id, attempt); fires *after* the round
    writer persisted the round (observer registration order).
    """

    def __init__(self, probability: float, seed: int, job_id: str, attempt: int):
        self.probability = probability
        self._rng = random.Random(f"{seed}:{job_id}:{attempt}")

    def __call__(self, record) -> None:
        if self._rng.random() < self.probability:
            log.warning(
                "injected worker crash",
                extra={"round": record.round_no, "p": self.probability},
            )
            os._exit(EXIT_INJECTED_CRASH)


def _maybe_crash_injector(job_id: str, attempt: int):
    raw = os.environ.get(CRASH_P_ENV)
    if not raw:
        return None
    probability = float(raw)
    if probability <= 0:
        return None
    seed = int(os.environ.get(CRASH_SEED_ENV, "0"))
    return _CrashInjector(probability, seed, job_id, attempt)


def run_job(job_dir: Path, attempt: int, deadline: Optional[float]) -> int:
    """Execute the job in ``job_dir``; returns the process exit code."""
    from repro.metrics import MetricsSummary
    from repro.obs.live import ProgressWriter
    from repro.obs.trace import SpanTracer, TraceContext
    from repro.server.validate import InvalidSubmission, parse_submission
    from repro.simulation import make_engine

    job_path = job_dir / "job.json"
    try:
        job_doc = json.loads(job_path.read_text())
        parsed = parse_submission(job_doc["payload"])
    except (OSError, ValueError, KeyError, InvalidSubmission) as exc:
        sys.stderr.write(f"worker: bad job dir {job_dir}: {exc}\n")
        return EXIT_BAD_JOB
    job_id = job_doc.get("job_id", job_dir.name)

    # Streamed rounds bound worker memory; the events file *is* the
    # retained history.
    config = parsed.config.with_overrides(stream_rounds=True)

    tokens = [FileToken(job_dir / "cancel")]
    if deadline is not None:
        tokens.append(DeadlineToken(deadline))
    cancel = CompositeToken(tokens)

    # The supervisor hands down a trace context (trace id + shard dir)
    # via the environment; inside it the worker records its engine spans
    # and leaves a shard next to the server's supervise span.  The
    # sharded selection pool's fork children inherit the same variables.
    trace_ctx = TraceContext.from_env(os.environ)
    tracer = None
    engine_kwargs = {"cancel": cancel}
    if trace_ctx is not None:
        tracer = SpanTracer(
            metadata={**trace_ctx.metadata(), "job_id": job_id,
                      "attempt": attempt}
        )
        engine_kwargs["tracer"] = tracer

    engine = make_engine(config, **engine_kwargs)
    writer = ResumingRoundWriter(job_dir / "events.jsonl", engine.world)
    engine.observers.append(writer)
    # Progress after the events append: a snapshot never gets ahead of
    # the durable round history.
    engine.observers.append(ProgressWriter(
        job_dir,
        job_id,
        rounds_total=config.rounds,
        budget=config.budget,
        n_tasks=len(engine.world.tasks),
        attempt=attempt,
    ))
    injector = _maybe_crash_injector(job_id, attempt)
    if injector is not None:
        engine.observers.append(injector)

    try:
        result = engine.run()
    except OperationCancelled as exc:
        log.info(
            "worker cancelled cooperatively",
            extra={"job": job_id, "reason": exc.reason},
        )
        return EXIT_TIMED_OUT if exc.reason == "timeout" else EXIT_CANCELLED
    finally:
        writer.close()
        if tracer is not None and trace_ctx is not None:
            try:
                tracer.write_jsonl(trace_ctx.shard_path())
            except OSError:  # pragma: no cover - tracing is advisory
                log.warning("could not write worker trace shard",
                            extra={"job": job_id})

    summary = MetricsSummary.from_result(result)
    _write_result(job_dir, job_id, parsed, summary, result)
    _ingest_obs(job_doc.get("obs_store"), job_id, parsed, summary, result)
    return EXIT_DONE


def _write_result(job_dir: Path, job_id: str, parsed, summary, result) -> None:
    from repro.io.atomic import atomic_write_text

    atomic_write_text(
        job_dir / "result.json",
        json.dumps(
            {
                "status": "done",
                "job_id": job_id,
                "fingerprint": parsed.fingerprint,
                "rounds_played": result.rounds_played,
                "summary": summary.as_dict(),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )


def _ingest_obs(obs_store, job_id: str, parsed, summary, result) -> None:
    """Record the finished job in the service's run store (when any).

    The store's inter-process lock (flock or the portable lockfile) is
    what makes concurrent workers safe here; ``dedupe_key=job_id`` makes
    a replayed ingest idempotent.
    """
    if not obs_store:
        return
    from repro.obs.store import RunStore, registry_values

    values = registry_values(result.metrics_totals().as_dict())
    for name, value in summary.as_dict().items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            values[f"summary/{name}"] = float(value)
    config = parsed.config
    RunStore(obs_store).ingest(
        "server-job",
        values,
        labels={
            "job_id": job_id,
            "fingerprint": parsed.fingerprint,
            "mechanism": config.mechanism,
            "selector": config.selector,
            "engine": config.engine,
            "seed": str(config.seed),
            **(
                {"scenario": parsed.payload["scenario"]}
                if parsed.payload.get("scenario")
                else {}
            ),
        },
        dedupe_key=job_id,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-server-worker",
        description="Run one job directory to a terminal state (internal).",
    )
    parser.add_argument("job_dir", help="the job directory (job.json inside)")
    parser.add_argument("--attempt", type=int, default=1,
                        help="1-based attempt number (for fault seeding)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="remaining wall-clock budget in seconds")
    args = parser.parse_args(argv)
    # Inherit the server's logging mode (format + level) from the
    # environment the supervisor injected, instead of hardcoding the
    # default key=value/WARNING config.
    configure_logging_from_env()
    log.info(
        "worker starting",
        extra={"job_dir": args.job_dir, "attempt": args.attempt},
    )
    return run_job(Path(args.job_dir), args.attempt, args.deadline)


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
