"""Simulation-as-a-service: a supervised, crash-recoverable job service.

The :mod:`repro.server` package turns the batch simulator into an
always-on service — the operating mode the paper's platform actually
implies (an MCS platform runs continuously, accepting sensing campaigns
as they arrive, not as one-shot scripts).  Its pillars:

- :mod:`~repro.server.jobs` — the typed job lifecycle state machine and
  its crash-safe JSONL journal;
- :mod:`~repro.server.queue` — bounded admission with explicit
  backpressure and memory-pressure load shedding;
- :mod:`~repro.server.validate` — eager validation at the HTTP boundary
  (structured 400s instead of deep worker failures);
- :mod:`~repro.server.worker` — the per-job subprocess, with
  append-only deterministic resume of the round-event stream;
- :mod:`~repro.server.supervisor` — worker restarts with capped
  decorrelated-jitter backoff and poison detection;
- :mod:`~repro.server.app` — the :class:`JobService` HTTP surface
  (submit / status / cancel / NDJSON tail / healthz / readyz);
- :mod:`~repro.server.client` — a stdlib client for the CLI and tests.
"""

from repro.server.app import JobService
from repro.server.client import ServerClient, ServerUnavailable
from repro.server.jobs import (
    Job,
    JobJournal,
    JobState,
    JobStateError,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
)
from repro.server.queue import Admission, BoundedJobQueue, MemoryWatermark
from repro.server.supervisor import WorkerSupervisor, worker_environment
from repro.server.validate import (
    InvalidSubmission,
    ParsedSubmission,
    parse_submission,
)

__all__ = [
    "Admission",
    "BoundedJobQueue",
    "InvalidSubmission",
    "Job",
    "JobJournal",
    "JobService",
    "JobState",
    "JobStateError",
    "MemoryWatermark",
    "ParsedSubmission",
    "ServerClient",
    "ServerUnavailable",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "WorkerSupervisor",
    "parse_submission",
    "worker_environment",
]
