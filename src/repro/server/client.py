"""A small stdlib client for the job service (CLI + tests + scripts).

``http.client`` handles the wire format (including chunked transfer
decoding, which the NDJSON tail uses), so this layer is just the route
map plus JSON in/out.  Every call opens a fresh connection — the server
answers ``Connection: close`` anyway, and a job service is not a
high-QPS API.
"""

from __future__ import annotations

import http.client
import json
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.resilience.errors import ReproError


class ServerUnavailable(ReproError, ConnectionError):
    """The service at host:port did not answer."""


class ServerClient:
    """Talks to one :class:`~repro.server.app.JobService`.

    Args:
        host / port: the service address.
        timeout: per-request socket timeout in seconds (tail requests
            use a longer one internally).
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def from_root(cls, root: Union[str, Path], timeout: float = 10.0) -> "ServerClient":
        """Connect to the server whose state directory is ``root``.

        Reads the ``server.json`` the service wrote at startup.

        Raises:
            ServerUnavailable: when no server file exists (the service
                never started, or uses a different root).
        """
        server_file = Path(root) / "server.json"
        try:
            doc = json.loads(server_file.read_text())
        except (OSError, ValueError) as exc:
            raise ServerUnavailable(
                f"no readable server.json under {root} — is the service "
                f"running with this --root?"
            ) from exc
        return cls(doc["host"], int(doc["port"]), timeout=timeout)

    # -- plumbing --------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], http.client.HTTPResponse]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
        except (ConnectionError, OSError) as exc:
            conn.close()
            raise ServerUnavailable(
                f"job service at {self.host}:{self.port} unreachable: {exc}"
            ) from exc
        return response.status, dict(response.getheaders()), response

    def _json_call(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        status, headers, response = self._request(method, path, body)
        try:
            raw = response.read()
        finally:
            response.close()
        try:
            doc = json.loads(raw) if raw else {}
        except ValueError:
            doc = {"error": "unparseable response", "raw": raw.decode("utf-8", "replace")}
        return status, doc, headers

    # -- API -------------------------------------------------------------

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        status, doc, _ = self._json_call("GET", "/healthz")
        return status, doc

    def readyz(self) -> Tuple[int, Dict[str, Any]]:
        status, doc, _ = self._json_call("GET", "/readyz")
        return status, doc

    def submit(
        self, submission: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """POST /jobs; returns (status, body, headers) — 429 included."""
        return self._json_call("POST", "/jobs", submission)

    def status(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        status, doc, _ = self._json_call("GET", f"/jobs/{job_id}")
        return status, doc

    def list_jobs(self, state: Optional[str] = None) -> Tuple[int, Dict[str, Any]]:
        path = "/jobs" + (f"?state={state}" if state else "")
        status, doc, _ = self._json_call("GET", path)
        return status, doc

    def cancel(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        status, doc, _ = self._json_call("POST", f"/jobs/{job_id}/cancel")
        return status, doc

    def metrics(self) -> Tuple[int, str]:
        """GET /metrics; returns (status, raw exposition text)."""
        status, _, response = self._request("GET", "/metrics")
        try:
            raw = response.read()
        finally:
            response.close()
        return status, raw.decode("utf-8", "replace")

    def progress(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        status, doc, _ = self._json_call("GET", f"/jobs/{job_id}/progress")
        return status, doc

    def tail(
        self, job_id: str, follow: bool = True, timeout: float = 600.0
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's NDJSON event lines as parsed dicts.

        With ``follow`` the stream runs until the service sends the
        terminal ``job_state`` line; the socket timeout bounds a stalled
        stream.
        """
        path = f"/jobs/{job_id}/events" + ("" if follow else "?follow=0")
        status, _, response = self._request("GET", path, timeout=timeout)
        try:
            if status != 200:
                raw = response.read()
                doc = json.loads(raw) if raw else {"error": f"HTTP {status}"}
                raise ServerUnavailable(
                    f"tail of {job_id} failed: HTTP {status}: "
                    f"{doc.get('error', '?')}"
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            response.close()

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_seconds: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final view.

        Raises:
            TimeoutError: when the budget runs out first.
        """
        deadline = time.monotonic() + timeout
        while True:
            status, doc = self.status(job_id)
            if status == 200 and doc["job"]["terminal"]:
                return doc["job"]
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout}s "
                    f"(last status: HTTP {status})"
                )
            time.sleep(poll_seconds)
