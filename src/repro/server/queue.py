"""The bounded admission queue: backpressure made explicit.

The paper's platform is always-on; an always-on service cannot let its
queue grow without bound, so admission is a first-class decision with
three outcomes:

- **accepted** — the job takes a slot (priority order, FIFO within a
  priority);
- **rejected** — the queue is full; the caller gets a ``Retry-After``
  hint derived from observed job durations (HTTP 429 upstream);
- **shed** — under memory pressure the service calls
  :meth:`BoundedJobQueue.shed_lowest` and the *lowest-priority queued*
  job is sacrificed (CANCELLED with a shed reason) to keep the service
  itself alive — graceful degradation, not OOM death.

The queue stores job ids only; the job table owns the records.  All
methods are synchronous and O(log n) / O(n) — the service serializes
access on the event loop, so no internal locking is needed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from repro.obs.log import get_logger
from repro.obs.profiler import read_rss_bytes

log = get_logger("server.queue")


class Admission:
    """One admission decision (truthy == accepted)."""

    def __init__(
        self, accepted: bool, reason: str = "", retry_after: Optional[int] = None
    ):
        self.accepted = accepted
        self.reason = reason
        self.retry_after = retry_after

    def __bool__(self) -> bool:
        return self.accepted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Admission(accepted={self.accepted}, reason={self.reason!r}, "
            f"retry_after={self.retry_after})"
        )


class BoundedJobQueue:
    """A bounded max-priority queue of job ids.

    Args:
        limit: maximum queued jobs (>= 1); the running pool is bounded
            separately by the supervisor's concurrency.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        # Heap entries: (-priority, seq, job_id) → pop order is highest
        # priority first, submission order within a priority.
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._removed: set = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._removed)

    @property
    def is_full(self) -> bool:
        return len(self) >= self.limit

    def offer(self, job_id: str, priority: int = 0) -> bool:
        """Admit ``job_id`` unless the queue is full (returns success)."""
        if self.is_full:
            return False
        heapq.heappush(self._heap, (-priority, next(self._seq), job_id))
        return True

    def pop(self) -> Optional[str]:
        """The next job id to run (None when empty)."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            if job_id in self._removed:
                self._removed.discard(job_id)
                continue
            return job_id
        return None

    def remove(self, job_id: str) -> bool:
        """Withdraw a queued job (cancellation); True when it was queued."""
        if any(
            entry[2] == job_id and entry[2] not in self._removed
            for entry in self._heap
        ):
            self._removed.add(job_id)
            return True
        return False

    def shed_lowest(self) -> Optional[str]:
        """Drop and return the lowest-priority queued job id (LIFO among
        equals: the newest of the least important goes first)."""
        live = [entry for entry in self._heap if entry[2] not in self._removed]
        if not live:
            return None
        # max() on (-priority, seq) finds the lowest priority, newest.
        victim = max(live)
        self._removed.add(victim[2])
        return victim[2]

    def snapshot(self) -> List[str]:
        """Queued job ids in pop order (for status endpoints)."""
        live = sorted(e for e in self._heap if e[2] not in self._removed)
        return [entry[2] for entry in live]


class MemoryWatermark:
    """RSS-based load-shedding trigger.

    Reuses the observatory profiler's RSS read (one ``/proc`` read), so
    the check is cheap enough to run on every admission and supervisor
    tick.

    Args:
        limit_bytes: shed when the process RSS exceeds this (None
            disables shedding).
        read: injectable RSS reader for tests.
    """

    def __init__(
        self,
        limit_bytes: Optional[int],
        read: Callable[[], int] = read_rss_bytes,
    ):
        if limit_bytes is not None and limit_bytes <= 0:
            raise ValueError(
                f"memory limit must be positive bytes, got {limit_bytes}"
            )
        self.limit_bytes = limit_bytes
        self._read = read

    @property
    def over_limit(self) -> bool:
        if self.limit_bytes is None:
            return False
        rss = self._read()
        return rss > 0 and rss > self.limit_bytes
