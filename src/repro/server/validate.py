"""Eager validation at the HTTP boundary: bad payloads never reach a worker.

A malformed submission costs a worker launch, a crash, N poison retries,
and an opaque failure the client learns about minutes later.  Validating
at admission turns all of that into one structured 400 answered in
microseconds: ``{"error": "invalid submission", "field": ..., "reason":
...}`` — the field names the offending knob, the reason is the same
message :class:`~repro.simulation.config.SimulationConfig`'s named
validation would have raised deep inside the worker.

The validated artifact, :class:`ParsedSubmission`, carries the built
config *and* the canonical payload; the worker rebuilds its config from
the same payload through the same function, so service and worker can
never disagree about what was admitted.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.resilience.errors import ReproError
from repro.resilience.journal import config_fingerprint
from repro.scenarios import ScenarioSpec, get_preset
from repro.simulation.config import SimulationConfig

#: Top-level keys a submission may carry.
SUBMISSION_KEYS = ("scenario", "spec", "overrides", "priority", "timeout")

#: SimulationConfig field names, for attributing a ConfigError message
#: to the knob it names (the messages lead with the field).
_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(SimulationConfig))


class InvalidSubmission(ReproError, ValueError):
    """A submission rejected at the boundary, with structured blame.

    Args:
        field: the submission field (or config knob) at fault.
        reason: the human-readable diagnosis.
    """

    def __init__(self, field: str, reason: str):
        super().__init__(f"{field}: {reason}")
        self.field = field
        self.reason = reason

    def as_dict(self) -> Dict[str, str]:
        """The HTTP 400 body."""
        return {
            "error": "invalid submission",
            "field": self.field,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class ParsedSubmission:
    """One admitted submission: canonical payload + the config it means.

    Args:
        payload: the canonicalised submission (what the job journals
            and the worker re-parses).
        config: the fully validated :class:`SimulationConfig`.
        fingerprint: :func:`~repro.resilience.journal.config_fingerprint`
            of ``config`` — the dedup key.
        priority: admission priority (higher first; shed lowest).
        timeout: per-job wall-clock budget in seconds, or None.
    """

    payload: Dict[str, Any]
    config: SimulationConfig
    fingerprint: str
    priority: int
    timeout: Optional[float]


def _blame_config_error(message: str) -> str:
    """The config field a ConfigError message names (or ``"config"``)."""
    first_word = message.split()[0] if message.split() else ""
    token = first_word.strip("'\"`:,")
    return token if token in _CONFIG_FIELDS else "config"


def parse_submission(body: Any) -> ParsedSubmission:
    """Validate one POST /jobs body into a :class:`ParsedSubmission`.

    Accepted shape (all keys optional, ``scenario`` and ``spec``
    mutually exclusive)::

        {
          "scenario": "city-2k",          # preset name or spec file deps
          "spec": {"name": ..., "config": {...}},   # inline ScenarioSpec
          "overrides": {"seed": 7},       # SimulationConfig fields on top
          "priority": 3,                  # int, default 0
          "timeout": 120.0                # positive seconds, default none
        }

    Raises:
        InvalidSubmission: naming the offending field and the reason.
    """
    if not isinstance(body, Mapping):
        raise InvalidSubmission(
            "body", f"submission must be a JSON object, got {type(body).__name__}"
        )
    unknown = sorted(set(body) - set(SUBMISSION_KEYS))
    if unknown:
        raise InvalidSubmission(
            unknown[0],
            f"unknown submission key(s) {', '.join(map(repr, unknown))}; "
            f"valid keys: {', '.join(SUBMISSION_KEYS)}",
        )
    scenario = body.get("scenario")
    spec_mapping = body.get("spec")
    if scenario is not None and spec_mapping is not None:
        raise InvalidSubmission(
            "scenario", "pass either 'scenario' or 'spec', not both"
        )

    priority = body.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise InvalidSubmission(
            "priority",
            f"priority must be an integer, got {priority!r}",
        )

    timeout = body.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise InvalidSubmission(
                "timeout", f"timeout must be a number of seconds, got {timeout!r}"
            )
        if timeout <= 0:
            raise InvalidSubmission(
                "timeout", f"timeout must be positive seconds, got {timeout}"
            )
        timeout = float(timeout)

    overrides = body.get("overrides", {})
    if not isinstance(overrides, Mapping):
        raise InvalidSubmission(
            "overrides",
            f"overrides must be an object of SimulationConfig fields, "
            f"got {type(overrides).__name__}",
        )

    spec: Optional[ScenarioSpec] = None
    if scenario is not None:
        if not isinstance(scenario, str):
            raise InvalidSubmission(
                "scenario",
                f"scenario must be a preset name string, got {scenario!r}",
            )
        try:
            spec = get_preset(scenario)
        except (KeyError, ValueError) as exc:
            raise InvalidSubmission("scenario", str(exc)) from exc
    elif spec_mapping is not None:
        if not isinstance(spec_mapping, Mapping):
            raise InvalidSubmission(
                "spec",
                f"spec must be an object with name/description/config, "
                f"got {type(spec_mapping).__name__}",
            )
        try:
            spec = ScenarioSpec.from_mapping(spec_mapping)
        except ReproError as exc:
            raise InvalidSubmission(_blame_config_error(str(exc)), str(exc)) from exc
        except ValueError as exc:
            raise InvalidSubmission("spec", str(exc)) from exc

    try:
        if spec is not None:
            config = spec.to_config(**dict(overrides))
        else:
            config = SimulationConfig().with_overrides(**dict(overrides))
    except ReproError as exc:
        # ConfigError messages lead with the offending field name.
        raise InvalidSubmission(_blame_config_error(str(exc)), str(exc)) from exc
    except (TypeError, ValueError) as exc:
        # with_overrides names unknown fields; TypeError catches
        # non-string keys and similar shape mistakes.
        raise InvalidSubmission("overrides", str(exc)) from exc

    payload = {
        "scenario": scenario,
        "spec": dict(spec_mapping) if spec_mapping is not None else None,
        "overrides": {str(k): v for k, v in overrides.items()},
        "priority": priority,
        "timeout": timeout,
    }
    return ParsedSubmission(
        payload=payload,
        config=config,
        fingerprint=config_fingerprint(config),
        priority=priority,
        timeout=timeout,
    )
