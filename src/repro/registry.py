"""One registry pattern for every pluggable component.

The library grew three hand-rolled name→class maps (incentive
mechanisms, task selectors, mobility policies), each with its own
``make_*`` function and its own unknown-name error wording.  This module
replaces them with a single :class:`Registry`:

- ``register(cls, name=...)`` — add a class (usable as a decorator),
- ``create(name, **kwargs)`` — instantiate by name, forwarding kwargs,
- ``available()`` — the registered names, in registration order,
- ``get(name)`` — the class itself (for introspection and subclassing).

Unknown names always raise a :class:`ValueError` that lists the valid
names, so a typo in a config file or CLI flag is a one-glance fix.

The legacy ``make_mechanism`` / ``make_selector`` functions survive as
thin shims that emit a :class:`DeprecationWarning` and forward here;
they will be removed one release after the ``repro.api`` facade landed.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterable, Optional, Tuple, Type, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """A name→class registry for one kind of pluggable component.

    Args:
        kind: what the registry holds ("mechanism", "selector", ...);
            used in error messages, so keep it singular and lowercase.

    >>> registry = Registry("greeter")
    >>> @registry.register(name="hello")
    ... class Hello:
    ...     def __init__(self, who="world"): self.who = who
    >>> registry.create("hello", who="there").who
    'there'
    >>> registry.available()
    ('hello',)
    """

    def __init__(self, kind: str):
        if not kind:
            raise ValueError("registry kind must be a non-empty string")
        self.kind = kind
        self._classes: Dict[str, Type[T]] = {}

    def register(
        self, cls: Optional[Type[T]] = None, *, name: Optional[str] = None
    ) -> Callable[[Type[T]], Type[T]]:
        """Register a class, by explicit ``name`` or its ``name`` attribute.

        Usable directly (``registry.register(Cls)``) or as a decorator
        (``@registry.register`` / ``@registry.register(name="alias")``).

        Raises:
            ValueError: if no name can be derived, or the name is taken
                by a *different* class (re-registering the same class is
                a no-op, which keeps module reloads harmless).
        """

        def _add(klass: Type[T]) -> Type[T]:
            key = name if name is not None else getattr(klass, "name", None)
            if not key or not isinstance(key, str):
                raise ValueError(
                    f"cannot register {klass!r} as a {self.kind}: pass "
                    f"name=... or give the class a 'name' attribute"
                )
            existing = self._classes.get(key)
            if existing is not None and existing is not klass:
                raise ValueError(
                    f"{self.kind} name {key!r} is already registered to "
                    f"{existing.__name__}; unregister it first or pick "
                    f"another name"
                )
            self._classes[key] = klass
            return klass

        if cls is not None:
            return _add(cls)
        return _add

    def create(self, name: str, **kwargs) -> T:
        """Instantiate the class registered under ``name``.

        Keyword arguments forward to the constructor, so e.g.
        ``MECHANISMS.create("on-demand", budget=2000.0)`` works.

        Raises:
            ValueError: for an unknown name (message lists valid names).
        """
        return self.get(name)(**kwargs)

    def get(self, name: str) -> Type[T]:
        """The class registered under ``name``.

        Raises:
            ValueError: for an unknown name (message lists valid names).
        """
        try:
            return self._classes[name]
        except KeyError:
            valid = ", ".join(sorted(self._classes))
            raise ValueError(
                f"unknown {self.kind} {name!r}; valid: {valid}"
            ) from None

    def available(self) -> Tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._classes)

    def __contains__(self, name: object) -> bool:
        return name in self._classes

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self) -> Iterable[str]:
        return iter(self._classes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry(kind={self.kind!r}, names={list(self._classes)})"
