"""The stable facade: everything downstream code should import.

``repro.api`` (re-exported by the top-level ``repro`` package) is the
supported surface of the library.  Anything not importable from here —
engine internals, cache layers, the obs plumbing — is internal and may
change between releases without notice (see README "Public API").

Typical use::

    from repro import api

    # a named scenario, overriding one knob
    result = api.simulate(scenario="paper-2018", seed=7)

    # or explicit configuration
    result = api.simulate(api.SimulationConfig(n_users=500, selector="greedy"))

    print(api.summarize(result).as_dict())

    # a paper panel
    panel = api.run_experiment("fig6a", repetitions=5)
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Union

from repro.core.ahp import PairwiseComparisonMatrix, example_comparison_matrix
from repro.core.demand import DemandCalculator, DemandWeights, TaskDemandInputs
from repro.core.levels import DemandLevels
from repro.core.mechanisms import (
    MECHANISMS,
    POLICIES,
    IncentiveMechanism,
    PolicyContext,
    PolicyMechanism,
    apply_incentive_action,
)
from repro.core.rewards import RewardSchedule
from repro.envs import (
    ACTION_ADAPTERS,
    OBS_BUILDERS,
    REWARD_FUNCTIONS,
    IncentiveEnv,
)
from repro.dynamics import DynamicsSpec, WorldEvent
from repro.experiments.registry import experiment_ids, run_experiment
from repro.geometry import Point, RectRegion
from repro.io.ascii_chart import render_chart
from repro.io.events import RoundStreamWriter, read_events_jsonl, write_events_jsonl
from repro.io.tables import render_experiment, render_table
from repro.io.worldmap import render_world
from repro.metrics import (
    MetricsSummary,
    average_profit_per_user,
    coverage,
    coverage_by_round,
    measurements_per_round,
    measurements_per_task,
    overall_completeness,
    total_paid,
    user_profits,
)
from repro.scenarios import (
    PRESETS,
    ScenarioSpec,
    get_preset,
    load_scenario,
    load_spec,
    preset_names,
    save_spec,
)
from repro.selection import (
    SELECTORS,
    CandidateTask,
    Selection,
    Selector,
    TaskSelectionProblem,
)
from repro.server.client import ServerClient
from repro.simulation import (
    SessionObservation,
    SimulationConfig,
    SimulationResult,
    SimulationSession,
    TaskSnapshot,
    make_engine,
    result_fingerprint,
    round_fingerprint,
)
from repro.simulation import simulate as _simulate
from repro.world import MobileUser, SensingTask, World, WorldGenerator

#: The registered mechanism / selector names, in registration order —
#: valid values for ``SimulationConfig.mechanism`` / ``.selector``.
MECHANISM_NAMES = MECHANISMS.available()
SELECTOR_NAMES = SELECTORS.available()

ScenarioLike = Union[str, Path, ScenarioSpec]


def _resolve_scenario(scenario: ScenarioLike) -> ScenarioSpec:
    if isinstance(scenario, ScenarioSpec):
        return scenario
    return load_scenario(scenario)


def build_config(
    scenario: Optional[ScenarioLike] = None, **overrides: Any
) -> SimulationConfig:
    """A :class:`SimulationConfig` from a scenario and/or field overrides.

    Args:
        scenario: a preset name (``"city-50k"``), a ``.toml``/``.json``
            spec path, or a :class:`ScenarioSpec`; None starts from the
            config defaults.
        **overrides: :class:`SimulationConfig` fields applied on top
            (unknown names raise ``ValueError`` listing the valid ones).
    """
    if scenario is not None:
        return _resolve_scenario(scenario).to_config(**overrides)
    return SimulationConfig().with_overrides(**overrides)


def simulate(
    config: Optional[SimulationConfig] = None,
    *,
    scenario: Optional[ScenarioLike] = None,
    workers: Optional[int] = None,
    **overrides: Any,
) -> SimulationResult:
    """Run one seeded simulation (the facade's one-call entry point).

    Exactly one of ``config`` / ``scenario`` may be given (neither means
    the defaults); ``overrides`` are config fields applied on top either
    way.  The engine honours ``config.engine`` (``scalar``/``batched``).

    Args:
        workers: select-phase worker processes for the batched engine
            (``None``/``1`` = in-process).  An execution knob, not a
            config field: results are bit-identical at every worker
            count, so it never enters run fingerprints.

    >>> simulate(scenario="paper-2018", n_users=30, rounds=3).rounds_played
    3
    """
    if config is not None and scenario is not None:
        raise ValueError("pass either config or scenario, not both")
    if config is None:
        config = build_config(scenario, **overrides)
    elif overrides:
        config = config.with_overrides(**overrides)
    if workers is None:
        return _simulate(config)
    engine = make_engine(config, workers=workers)
    try:
        return engine.run()
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


def open_session(
    config: Optional[SimulationConfig] = None,
    *,
    scenario: Optional[ScenarioLike] = None,
    workers: Optional[int] = None,
    observers=(),
    **overrides: Any,
) -> SimulationSession:
    """Open a stepwise simulation session (the interactive ``simulate``).

    Same configuration surface as :func:`simulate` — one of ``config`` /
    ``scenario`` plus field overrides — but instead of running to
    completion it returns a :class:`SimulationSession` whose round loop
    the caller drives: ``observe()`` for a read-only snapshot,
    ``step(action=None)`` to play one round (optionally retuning the
    mechanism first), ``result()`` for the history so far, ``close()``
    (or a ``with`` block) to release engine resources.

    Stepped with no actions, a session replays ``simulate()``
    bit-identically on every engine (scalar, batched, sharded).

    >>> with open_session(scenario="paper-2018", rounds=3) as session:
    ...     records = [session.step() for _ in range(3)]
    >>> [r.round_no for r in records]
    [1, 2, 3]
    """
    if config is not None and scenario is not None:
        raise ValueError("pass either config or scenario, not both")
    if config is None:
        config = build_config(scenario, **overrides)
    elif overrides:
        config = config.with_overrides(**overrides)
    return SimulationSession(config, workers=workers, observers=observers)


def make_env(
    config: Optional[SimulationConfig] = None,
    *,
    scenario: Optional[ScenarioLike] = None,
    obs: Any = "demand-levels",
    actions: Any = "incentive",
    reward: Any = "completeness-delta",
    workers: Optional[int] = None,
    **overrides: Any,
) -> IncentiveEnv:
    """Build an :class:`IncentiveEnv` with the facade's scenario surface.

    One of ``config`` / ``scenario`` plus overrides, exactly like
    :func:`simulate`; ``obs`` / ``actions`` / ``reward`` select the
    pluggable pieces by registry name (see :mod:`repro.envs`).
    """
    if config is not None and scenario is not None:
        raise ValueError("pass either config or scenario, not both")
    if config is None:
        config = build_config(scenario, **overrides)
    elif overrides:
        config = config.with_overrides(**overrides)
    return IncentiveEnv(
        config, obs=obs, actions=actions, reward=reward, workers=workers
    )


def connect(target: Union[str, Path], timeout: float = 10.0) -> ServerClient:
    """A :class:`ServerClient` for a running job service.

    Args:
        target: ``"host:port"``, an ``http://host:port`` URL, or a
            server state directory (the client then reads the
            ``server.json`` the service wrote at startup).
        timeout: per-request socket timeout in seconds.

    Raises:
        ServerUnavailable: for a directory target with no readable
            ``server.json``.
    """
    text = str(target)
    address = text[7:] if text.startswith("http://") else text
    host, sep, port = address.rpartition(":")
    if sep and "/" not in port and port.isdigit():
        return ServerClient(host or "127.0.0.1", int(port), timeout=timeout)
    return ServerClient.from_root(target, timeout=timeout)


def summarize(result: SimulationResult) -> MetricsSummary:
    """The standard metrics digest for a finished run."""
    return MetricsSummary.from_result(result)


def create_mechanism(name: str, **kwargs: Any) -> IncentiveMechanism:
    """Instantiate an incentive mechanism from :data:`MECHANISM_NAMES`."""
    return MECHANISMS.create(name, **kwargs)


def create_selector(name: str, **kwargs: Any) -> Selector:
    """Instantiate a task selector from :data:`SELECTOR_NAMES`."""
    return SELECTORS.create(name, **kwargs)


__all__ = [
    # run things
    "SimulationConfig",
    "SimulationResult",
    "build_config",
    "simulate",
    "make_engine",
    "summarize",
    "run_experiment",
    "experiment_ids",
    # stepwise sessions
    "open_session",
    "SimulationSession",
    "SessionObservation",
    "TaskSnapshot",
    "round_fingerprint",
    "result_fingerprint",
    # policy environment
    "make_env",
    "IncentiveEnv",
    "OBS_BUILDERS",
    "ACTION_ADAPTERS",
    "REWARD_FUNCTIONS",
    "POLICIES",
    "PolicyMechanism",
    "PolicyContext",
    "apply_incentive_action",
    # server client
    "connect",
    "ServerClient",
    # scenarios
    "PRESETS",
    "get_preset",
    "load_spec",
    "ScenarioSpec",
    "load_scenario",
    "preset_names",
    "save_spec",
    # registries
    "MECHANISM_NAMES",
    "SELECTOR_NAMES",
    "create_mechanism",
    "create_selector",
    # building blocks
    "DemandCalculator",
    "DemandLevels",
    "DemandWeights",
    "IncentiveMechanism",
    "PairwiseComparisonMatrix",
    "RewardSchedule",
    "TaskDemandInputs",
    "example_comparison_matrix",
    "CandidateTask",
    "Selection",
    "Selector",
    "TaskSelectionProblem",
    # open-world dynamics
    "DynamicsSpec",
    "WorldEvent",
    # world
    "MobileUser",
    "Point",
    "RectRegion",
    "SensingTask",
    "World",
    "WorldGenerator",
    # metrics
    "MetricsSummary",
    "average_profit_per_user",
    "coverage",
    "coverage_by_round",
    "measurements_per_round",
    "measurements_per_task",
    "overall_completeness",
    "total_paid",
    "user_profits",
    # io
    "RoundStreamWriter",
    "read_events_jsonl",
    "render_chart",
    "render_experiment",
    "render_table",
    "render_world",
    "write_events_jsonl",
]
