"""repro — Pay On-demand: dynamic incentives for mobile crowdsensing.

A from-scratch reproduction of Wang et al., *Pay On-demand: Dynamic
Incentive and Task Selection for Location-dependent Mobile Crowdsensing
Systems* (ICDCS 2018): the demand-based dynamic incentive mechanism
(AHP-weighted demand indicator, Eq. 2–9), the NP-hard distributed task
selection problem with an exact bitmask DP and the O(m²) greedy
(Section V), the fixed and steered baselines, the full round-based
simulation with declarative scenarios (up to a batched 50k-user city),
and an experiment harness regenerating every table and figure of the
paper's evaluation.

Quickstart::

    from repro import api

    result = api.simulate(scenario="paper-2018", seed=42)
    print(api.summarize(result).as_dict())

The supported import surface is :mod:`repro.api` (everything in it is
also re-exported here); any module not reachable from the facade is
internal.  See README.md for the architecture tour, DESIGN.md for the
system inventory, and EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro import api
from repro.api import (
    MECHANISM_NAMES,
    PRESETS,
    SELECTOR_NAMES,
    CandidateTask,
    DemandCalculator,
    DemandLevels,
    DemandWeights,
    IncentiveEnv,
    IncentiveMechanism,
    MetricsSummary,
    MobileUser,
    PairwiseComparisonMatrix,
    Point,
    RectRegion,
    RewardSchedule,
    PolicyMechanism,
    ScenarioSpec,
    Selection,
    Selector,
    SensingTask,
    ServerClient,
    SessionObservation,
    SimulationConfig,
    SimulationResult,
    SimulationSession,
    TaskSelectionProblem,
    World,
    WorldGenerator,
    build_config,
    connect,
    create_mechanism,
    create_selector,
    experiment_ids,
    load_scenario,
    make_engine,
    make_env,
    open_session,
    preset_names,
    result_fingerprint,
    round_fingerprint,
    run_experiment,
    save_spec,
    simulate,
    summarize,
)
from repro.core import (
    OnDemandMechanism,
    FixedMechanism,
    SteeredMechanism,
    ProportionalDemandMechanism,
    make_mechanism,
)
from repro.selection import (
    DynamicProgrammingSelector,
    GreedySelector,
    GreedyTwoOptSelector,
    BruteForceSelector,
    TimeBoundedSelector,
    make_selector,
)
from repro.simulation import SimulationEngine
from repro.resilience import (
    ReproError,
    ConfigError,
    SelectorTimeout,
    MechanismPriceError,
    ResultCorruption,
    TransientIOError,
    RunJournal,
)

__version__ = "1.1.0"

__all__ = [
    "api",
    # facade (repro.api re-exports)
    "MECHANISM_NAMES",
    "PRESETS",
    "SELECTOR_NAMES",
    "CandidateTask",
    "DemandCalculator",
    "DemandLevels",
    "DemandWeights",
    "IncentiveMechanism",
    "MetricsSummary",
    "MobileUser",
    "PairwiseComparisonMatrix",
    "Point",
    "RectRegion",
    "RewardSchedule",
    "ScenarioSpec",
    "Selection",
    "Selector",
    "SensingTask",
    "SimulationConfig",
    "SimulationResult",
    "TaskSelectionProblem",
    "World",
    "WorldGenerator",
    "build_config",
    "create_mechanism",
    "create_selector",
    "experiment_ids",
    "load_scenario",
    "make_engine",
    "preset_names",
    "run_experiment",
    "save_spec",
    "simulate",
    "summarize",
    # sessions, envs, server (repro.api re-exports)
    "open_session",
    "SimulationSession",
    "SessionObservation",
    "round_fingerprint",
    "result_fingerprint",
    "make_env",
    "IncentiveEnv",
    "PolicyMechanism",
    "connect",
    "ServerClient",
    # concrete classes kept at top level for compatibility
    "SimulationEngine",
    "OnDemandMechanism",
    "FixedMechanism",
    "SteeredMechanism",
    "ProportionalDemandMechanism",
    "make_mechanism",
    "DynamicProgrammingSelector",
    "GreedySelector",
    "GreedyTwoOptSelector",
    "BruteForceSelector",
    "TimeBoundedSelector",
    "make_selector",
    # errors
    "ReproError",
    "ConfigError",
    "SelectorTimeout",
    "MechanismPriceError",
    "ResultCorruption",
    "TransientIOError",
    "RunJournal",
    "__version__",
]
