"""repro — Pay On-demand: dynamic incentives for mobile crowdsensing.

A from-scratch reproduction of Wang et al., *Pay On-demand: Dynamic
Incentive and Task Selection for Location-dependent Mobile Crowdsensing
Systems* (ICDCS 2018): the demand-based dynamic incentive mechanism
(AHP-weighted demand indicator, Eq. 2–9), the NP-hard distributed task
selection problem with an exact bitmask DP and the O(m²) greedy
(Section V), the fixed and steered baselines, the full round-based
simulation, and an experiment harness regenerating every table and
figure of the paper's evaluation.

Quickstart::

    from repro import SimulationConfig, simulate, MetricsSummary

    result = simulate(SimulationConfig(n_users=100, seed=42))
    print(MetricsSummary.from_result(result))

See README.md for the architecture tour, DESIGN.md for the system
inventory and per-experiment index, and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.simulation import SimulationConfig, SimulationEngine, simulate
from repro.metrics import MetricsSummary
from repro.core import (
    OnDemandMechanism,
    FixedMechanism,
    SteeredMechanism,
    ProportionalDemandMechanism,
    make_mechanism,
    PairwiseComparisonMatrix,
    DemandWeights,
    DemandCalculator,
    DemandLevels,
    RewardSchedule,
)
from repro.selection import (
    DynamicProgrammingSelector,
    GreedySelector,
    GreedyTwoOptSelector,
    BruteForceSelector,
    make_selector,
)
from repro.selection import TimeBoundedSelector
from repro.resilience import (
    ReproError,
    ConfigError,
    SelectorTimeout,
    MechanismPriceError,
    ResultCorruption,
    TransientIOError,
    RunJournal,
)
from repro.world import World, WorldGenerator, SensingTask, MobileUser
from repro.geometry import Point, RectRegion

__version__ = "1.0.0"

__all__ = [
    "SimulationConfig",
    "SimulationEngine",
    "simulate",
    "MetricsSummary",
    "OnDemandMechanism",
    "FixedMechanism",
    "SteeredMechanism",
    "ProportionalDemandMechanism",
    "make_mechanism",
    "PairwiseComparisonMatrix",
    "DemandWeights",
    "DemandCalculator",
    "DemandLevels",
    "RewardSchedule",
    "DynamicProgrammingSelector",
    "GreedySelector",
    "GreedyTwoOptSelector",
    "BruteForceSelector",
    "TimeBoundedSelector",
    "make_selector",
    "ReproError",
    "ConfigError",
    "SelectorTimeout",
    "MechanismPriceError",
    "ResultCorruption",
    "TransientIOError",
    "RunJournal",
    "World",
    "WorldGenerator",
    "SensingTask",
    "MobileUser",
    "Point",
    "RectRegion",
    "__version__",
]
