"""World model: sensing tasks, mobile users, and world generation.

This package models the physical side of the crowdsensing system from
Section III of the paper:

- :class:`~repro.world.task.SensingTask` — a location-dependent task
  :math:`t_i` with location :math:`L_{t_i}`, deadline :math:`\\tau_i`
  (in rounds), and a required number of measurements :math:`\\varphi_i`.
- :class:`~repro.world.user.MobileUser` — a user :math:`u_i` with a
  current position, walking speed, movement cost, and per-round time
  budget :math:`B^k_{u_i}`.
- :class:`~repro.world.generator.WorldGenerator` — seeded generators for
  the uniform layout the paper evaluates and a clustered layout that
  exaggerates the "remote task" inequality the paper motivates.
- :mod:`~repro.world.mobility` — policies controlling where a user starts
  the next round (the paper leaves this unspecified; see DESIGN.md §3).
"""

from repro.world.task import SensingTask, TaskStatus
from repro.world.user import MobileUser
from repro.world.generator import WorldGenerator, World
from repro.world.arrivals import (
    ARRIVALS,
    ArrivalStream,
    StaticArrival,
    PoissonArrival,
    BurstArrival,
)
from repro.world.population import PopulationGroup, parse_population
from repro.world.mobility import (
    MOBILITY,
    MobilityPolicy,
    StationaryMobility,
    FollowPathMobility,
    RandomWaypointMobility,
    MixedMobility,
    make_mobility,
)

__all__ = [
    "SensingTask",
    "TaskStatus",
    "MobileUser",
    "WorldGenerator",
    "World",
    "ARRIVALS",
    "ArrivalStream",
    "StaticArrival",
    "PoissonArrival",
    "BurstArrival",
    "PopulationGroup",
    "parse_population",
    "MOBILITY",
    "MobilityPolicy",
    "StationaryMobility",
    "FollowPathMobility",
    "RandomWaypointMobility",
    "MixedMobility",
    "make_mobility",
]
