"""Task arrival streams: when each sensing task is released.

The paper publishes every task at round 1; related work (Cheung et al.,
*Distributed Time-Sensitive Task Selection in Mobile Crowdsensing*)
studies tasks that arrive over time.  A stream maps the scenario's task
count and horizon to one release round per task:

- :class:`StaticArrival` — releases drawn uniformly from the generator's
  ``release_range`` (the paper's setup is the default ``(1, 1)``, which
  draws nothing so legacy seeds reproduce bit-exactly).
- :class:`PoissonArrival` — releases from a Poisson process over the
  horizon (exponential inter-arrival gaps), the standard model for
  requesters posting tasks independently.
- :class:`BurstArrival` — a background trickle plus one release spike
  (a planned event: a concert, a storm warning) at a chosen round.

Each task's deadline then becomes ``release - 1 + duration`` with the
duration drawn from ``deadline_range``, exactly like the staggered
``release_range`` path.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from repro.registry import Registry


class ArrivalStream(abc.ABC):
    """Draws one release round per task."""

    name: str = "abstract"

    @abc.abstractmethod
    def releases(
        self,
        n_tasks: int,
        horizon: int,
        release_range: Tuple[int, int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Integer release rounds, one per task, each in ``[1, horizon]``.

        Args:
            n_tasks: how many tasks the world holds.
            horizon: the simulated horizon in rounds (releases are
                clamped so every task is publishable within the run).
            release_range: the generator's static release window —
                only :class:`StaticArrival` reads it.
            rng: the world random stream.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class StaticArrival(ArrivalStream):
    """The generator's legacy behaviour: uniform draws from ``release_range``."""

    name = "static"

    def releases(
        self,
        n_tasks: int,
        horizon: int,
        release_range: Tuple[int, int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        low, high = release_range
        if (low, high) == (1, 1):
            # No draws so legacy seeds reproduce bit-exactly.
            return np.ones(n_tasks, dtype=int)
        return rng.integers(low, high + 1, size=n_tasks)


class PoissonArrival(ArrivalStream):
    """Tasks arrive as a Poisson process across the horizon.

    Args:
        rate: expected arrivals per round.  None (default) spreads the
            task count over the horizon (``n_tasks / horizon``), so the
            stream ends roughly when the run does.
    """

    name = "poisson"

    def __init__(self, rate: Optional[float] = None):
        if rate is not None and rate <= 0:
            raise ValueError(f"poisson arrival rate must be positive, got {rate}")
        self.rate = rate

    def releases(
        self,
        n_tasks: int,
        horizon: int,
        release_range: Tuple[int, int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        rate = self.rate if self.rate is not None else n_tasks / max(horizon, 1)
        gaps = rng.exponential(scale=1.0 / rate, size=n_tasks)
        times = np.cumsum(gaps)
        return np.clip(np.ceil(times).astype(int), 1, horizon)


class BurstArrival(ArrivalStream):
    """A background trickle plus one release spike.

    Args:
        round_no: the round the burst lands on.  None (default) puts it
            a third of the way into the horizon.
        fraction: the share of tasks released in the burst (the rest
            follow the static background draw).
    """

    name = "burst"

    def __init__(self, round_no: Optional[int] = None, fraction: float = 0.5):
        if round_no is not None and round_no < 1:
            raise ValueError(f"burst round_no must be >= 1, got {round_no}")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"burst fraction must be in [0, 1], got {fraction}")
        self.round_no = round_no
        self.fraction = fraction

    def releases(
        self,
        n_tasks: int,
        horizon: int,
        release_range: Tuple[int, int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        burst_round = (
            self.round_no if self.round_no is not None else max(1, horizon // 3)
        )
        burst_round = min(burst_round, horizon)
        background = StaticArrival().releases(n_tasks, horizon, release_range, rng)
        n_burst = int(round(n_tasks * self.fraction))
        if n_burst == 0:
            return background
        chosen = rng.permutation(n_tasks)[:n_burst]
        background[chosen] = burst_round
        return background


ARRIVALS: Registry[ArrivalStream] = Registry("arrival stream")
for _cls in (StaticArrival, PoissonArrival, BurstArrival):
    ARRIVALS.register(_cls)
