"""The location-dependent sensing task.

A task carries both its static description (location, deadline, required
measurements — Section III-C of the paper) and its mutable sensing state
(how many measurements it has received, from whom, and when).  The
incentive mechanisms read the state to compute demand; the engine writes
it as users upload data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.geometry.point import Point


class TaskStatus(enum.Enum):
    """Lifecycle of a task within one simulation.

    ``ACTIVE``    — published; accepts measurements.
    ``COMPLETED`` — received its required measurements; no longer published.
    ``EXPIRED``   — its deadline passed before completion; no longer published.
    """

    ACTIVE = "active"
    COMPLETED = "completed"
    EXPIRED = "expired"


@dataclass
class SensingTask:
    """A location-dependent sensing task :math:`t_i`.

    Args:
        task_id: unique non-negative integer id (index into the world).
        location: where the measurement must be taken (:math:`L_{t_i}`).
        deadline: last round (1-based, inclusive) by which the task should
            be complete (:math:`\\tau_i` / :math:`D_{t_i}`).
        required_measurements: number of independent measurements needed
            (:math:`\\varphi_i`); each user contributes at most once.
        release_round: first round (1-based) at which the platform
            publishes the task.  The paper releases everything at round 1;
            later releases model the streaming-arrival setting its related
            work ([20]) studies.  Must not exceed the deadline.
    """

    task_id: int
    location: Point
    deadline: int
    required_measurements: int
    release_round: int = 1
    # --- mutable sensing state ---------------------------------------
    contributors: Set[int] = field(default_factory=set)
    measurements_by_round: Dict[int, int] = field(default_factory=dict)
    status: TaskStatus = TaskStatus.ACTIVE
    completed_round: int = 0  # 0 means "not completed"

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError(f"task_id must be non-negative, got {self.task_id}")
        if self.deadline < 1:
            raise ValueError(f"deadline must be >= 1 round, got {self.deadline}")
        if self.required_measurements < 1:
            raise ValueError(
                f"required_measurements must be >= 1, got {self.required_measurements}"
            )
        if not 1 <= self.release_round <= self.deadline:
            raise ValueError(
                f"release_round must be in [1, deadline={self.deadline}], "
                f"got {self.release_round}"
            )
        # Cached measurement total: `received` sits on the engine's
        # per-upload hot path (can_accept/remaining), where re-summing
        # the per-round dict is O(rounds) per read.  The count only
        # changes through record_measurement, which maintains it.
        self._received = sum(self.measurements_by_round.values())

    # -- derived quantities -------------------------------------------

    @property
    def received(self) -> int:
        """Total measurements received so far (:math:`\\pi_i`)."""
        return self._received

    @property
    def progress(self) -> float:
        """Completing progress :math:`\\pi_i / \\varphi_i` in [0, 1]."""
        return min(1.0, self.received / self.required_measurements)

    @property
    def remaining(self) -> int:
        """Measurements still needed to complete the task."""
        return max(0, self.required_measurements - self.received)

    @property
    def is_active(self) -> bool:
        return self.status is TaskStatus.ACTIVE

    def is_published(self, round_no: int) -> bool:
        """Whether the platform offers this task in round ``round_no``."""
        return self.is_active and round_no >= self.release_round

    @property
    def was_selected(self) -> bool:
        """Whether at least one user ever contributed (coverage, Fig. 6)."""
        return bool(self.contributors)

    def received_by_deadline(self) -> int:
        """Measurements received at rounds ``<= deadline`` (completeness, Fig. 7)."""
        return sum(
            count
            for round_no, count in self.measurements_by_round.items()
            if round_no <= self.deadline
        )

    # -- state transitions ---------------------------------------------

    def can_accept(self, user_id: int) -> bool:
        """Whether a measurement from ``user_id`` would be accepted now.

        Rejected if the task is no longer active, already full, or the
        user already contributed (the paper's one-measurement-per-user
        rule, Section III-A).
        """
        return (
            self.is_active
            and self.remaining > 0
            and user_id not in self.contributors
        )

    def record_measurement(self, user_id: int, round_no: int) -> None:
        """Accept one measurement from ``user_id`` at round ``round_no``.

        Raises:
            ValueError: if :meth:`can_accept` is false — the engine must
                check before paying a reward, so a violation here is a bug.
        """
        if not self.can_accept(user_id):
            raise ValueError(
                f"task {self.task_id} cannot accept a measurement from user "
                f"{user_id} (status={self.status.value}, received={self.received}"
                f"/{self.required_measurements})"
            )
        self.contributors.add(user_id)
        self.measurements_by_round[round_no] = (
            self.measurements_by_round.get(round_no, 0) + 1
        )
        self._received += 1
        if self.remaining == 0:
            self.status = TaskStatus.COMPLETED
            self.completed_round = round_no

    def expire_if_due(self, next_round: int) -> bool:
        """Mark the task expired if ``next_round`` is past its deadline.

        Called by the engine between rounds.  Returns True if the task
        transitioned to ``EXPIRED`` on this call.
        """
        if self.is_active and next_round > self.deadline:
            self.status = TaskStatus.EXPIRED
            return True
        return False
