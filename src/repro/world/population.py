"""Heterogeneous user populations: named groups with their own dynamics.

The paper's crowd is homogeneous (2 m/s walkers, one time budget);
IncentMe-style work models the real mix — commuters pinned to a spot,
cyclists covering ground, tourists wandering.  A population is a tuple
of group specs, each claiming a ``fraction`` of the users and optionally
overriding their mobility policy and movement parameters:

```toml
[[population]]
name = "commuters"
fraction = 0.4
mobility = "stationary"
speed = 1.2

[[population]]
name = "cyclists"
fraction = 0.2
mobility = "random-waypoint"
speed = [4.0, 7.0]        # per-user uniform draw
time_budget = [600, 1200]
```

Users are assigned to groups in declaration order by cumulative
fraction; any remainder keeps the base (config-level) parameters and the
default mobility policy.  Parameter values are either a scalar (shared
by the whole group) or a ``[low, high]`` pair drawn uniformly per user.

An empty population draws nothing, so legacy seeds reproduce
bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.world.user import MobileUser

#: A group parameter: inherit (None), shared scalar, or uniform [low, high].
ParamSpec = Union[None, float, Tuple[float, float]]

_PARAM_FIELDS = ("speed", "time_budget", "cost_per_meter")
_KNOWN_KEYS = ("name", "fraction", "mobility") + _PARAM_FIELDS


def _coerce_param(name: str, value: Any) -> ParamSpec:
    if value is None:
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if isinstance(value, (list, tuple)) and len(value) == 2:
        low, high = float(value[0]), float(value[1])
        if low > high:
            raise ValueError(
                f"population group parameter {name!r} range is inverted: "
                f"[{low}, {high}]"
            )
        return (low, high)
    raise ValueError(
        f"population group parameter {name!r} must be a number or a "
        f"[low, high] pair, got {value!r}"
    )


@dataclass(frozen=True)
class PopulationGroup:
    """One named slice of the user population."""

    name: str
    fraction: float
    mobility: Optional[str] = None
    speed: ParamSpec = None
    time_budget: ParamSpec = None
    cost_per_meter: ParamSpec = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("population group needs a non-empty name")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"population group {self.name!r} fraction must be in (0, 1], "
                f"got {self.fraction}"
            )

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "PopulationGroup":
        """Parse one group spec (a TOML/JSON table) into a group.

        Raises:
            ValueError: on unknown keys or malformed values, naming them.
        """
        unknown = sorted(set(data) - set(_KNOWN_KEYS))
        if unknown:
            raise ValueError(
                f"unknown population group key(s) {', '.join(map(repr, unknown))}; "
                f"valid keys: {', '.join(_KNOWN_KEYS)}"
            )
        if "name" not in data:
            raise ValueError(f"population group is missing 'name': {dict(data)!r}")
        if "fraction" not in data:
            raise ValueError(
                f"population group {data['name']!r} is missing 'fraction'"
            )
        return cls(
            name=str(data["name"]),
            fraction=float(data["fraction"]),
            mobility=data.get("mobility"),
            speed=_coerce_param("speed", data.get("speed")),
            time_budget=_coerce_param("time_budget", data.get("time_budget")),
            cost_per_meter=_coerce_param("cost_per_meter", data.get("cost_per_meter")),
        )

    def to_mapping(self) -> Dict[str, Any]:
        """The inverse of :meth:`from_mapping` (lossless round-trip)."""
        out: Dict[str, Any] = {"name": self.name, "fraction": self.fraction}
        if self.mobility is not None:
            out["mobility"] = self.mobility
        for key in _PARAM_FIELDS:
            value = getattr(self, key)
            if value is None:
                continue
            out[key] = list(value) if isinstance(value, tuple) else value
        return out


def parse_population(
    groups: Sequence[Mapping[str, Any]],
) -> Tuple[PopulationGroup, ...]:
    """Parse and cross-validate a whole population spec.

    Raises:
        ValueError: on duplicate names or fractions summing past 1.
    """
    parsed = tuple(PopulationGroup.from_mapping(g) for g in groups)
    names = [g.name for g in parsed]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate population group names in {names}")
    total = sum(g.fraction for g in parsed)
    if total > 1.0 + 1e-9:
        raise ValueError(
            f"population group fractions sum to {total:.3f} > 1 "
            f"(leave headroom for the base population or trim a group)"
        )
    return parsed


def group_counts(n_users: int, groups: Sequence[PopulationGroup]) -> List[int]:
    """How many users each group claims, by cumulative-fraction rounding.

    Boundaries are rounded so every count is within one user of
    ``fraction * n_users`` and the slices never overlap; leftover users
    stay in the base population.
    """
    counts: List[int] = []
    cumulative = 0.0
    previous = 0
    for group in groups:
        cumulative += group.fraction
        boundary = min(int(round(cumulative * n_users)), n_users)
        counts.append(max(0, boundary - previous))
        previous = boundary
    return counts


def apply_population(
    users: Sequence[MobileUser],
    groups: Sequence[PopulationGroup],
    rng: np.random.Generator,
) -> None:
    """Stamp group membership and draw per-group parameters in place.

    Users are taken in id order: the first ``count_0`` belong to the
    first group, and so on; the tail keeps base parameters and no group.
    Ranged parameters draw one uniform array per (group, parameter) in
    declaration order, so a fixed seed yields a fixed population.
    """
    if not groups:
        return
    counts = group_counts(len(users), groups)
    start = 0
    for group, count in zip(groups, counts):
        members = users[start : start + count]
        start += count
        draws: Dict[str, Optional[np.ndarray]] = {}
        for key in _PARAM_FIELDS:
            spec = getattr(group, key)
            if isinstance(spec, tuple):
                draws[key] = rng.uniform(spec[0], spec[1], size=count)
            else:
                draws[key] = None
        for i, user in enumerate(members):
            user.group = group.name
            for key in _PARAM_FIELDS:
                spec = getattr(group, key)
                if spec is None:
                    continue
                value = float(draws[key][i]) if draws[key] is not None else float(spec)
                setattr(user, key, value)
