"""Mobility policies: where a user starts the next sensing round.

The paper never states how users move *between* rounds (Section VI fixes
walking speed and cost but not the inter-round dynamics), so the engine
delegates to a pluggable policy:

- :class:`FollowPathMobility` (default) — the user starts the next round
  wherever its selected path ended, which keeps the population spatially
  coherent over time and lets the demand mechanism pull users toward
  neglected regions.
- :class:`StationaryMobility` — the user snaps back to its home location
  every round (commuters sensing from a fixed spot).
- :class:`RandomWaypointMobility` — the user walks toward a random
  waypoint for the travel distance it did not spend on tasks, a standard
  mobility model for crowdsensing simulations.

The ablation bench (``benchmarks/bench_ablations.py``) shows the headline
comparisons are insensitive to this choice.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.geometry.region import RectRegion
from repro.registry import Registry
from repro.world.user import MobileUser


class MobilityPolicy(abc.ABC):
    """Decides a user's position at the start of the next round."""

    name: str = "abstract"

    @abc.abstractmethod
    def next_position(
        self,
        user: MobileUser,
        path: Sequence[Point],
        region: RectRegion,
        rng: np.random.Generator,
    ) -> Point:
        """Return where ``user`` stands when the next round begins.

        Args:
            user: the user, positioned where this round started.
            path: the points the user visited this round, in order,
                *excluding* the starting position; empty if it sat out.
            region: the deployment area (positions must stay inside).
            rng: the engine's mobility random stream.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class StationaryMobility(MobilityPolicy):
    """The user returns to its home location after every round."""

    name = "stationary"

    def next_position(
        self,
        user: MobileUser,
        path: Sequence[Point],
        region: RectRegion,
        rng: np.random.Generator,
    ) -> Point:
        return user.home


class FollowPathMobility(MobilityPolicy):
    """The user stays wherever its task path ended (paper-default here)."""

    name = "follow-path"

    def next_position(
        self,
        user: MobileUser,
        path: Sequence[Point],
        region: RectRegion,
        rng: np.random.Generator,
    ) -> Point:
        if path:
            return path[-1]
        return user.location


class RandomWaypointMobility(MobilityPolicy):
    """The user wanders toward a random waypoint between rounds.

    After finishing its tasks (or sitting out), the user picks a uniform
    random waypoint in the region and walks toward it using a fraction of
    one round's travel allowance.
    """

    name = "random-waypoint"

    def __init__(self, wander_fraction: float = 0.5):
        if not 0.0 <= wander_fraction <= 1.0:
            raise ValueError(
                f"wander_fraction must be in [0, 1], got {wander_fraction}"
            )
        self.wander_fraction = wander_fraction

    def next_position(
        self,
        user: MobileUser,
        path: Sequence[Point],
        region: RectRegion,
        rng: np.random.Generator,
    ) -> Point:
        start = path[-1] if path else user.location
        waypoint = region.sample(rng, 1)[0]
        stride = user.max_travel_distance * self.wander_fraction
        return region.clamp(start.towards(waypoint, stride))


class MixedMobility(MobilityPolicy):
    """Routes each user to the policy of its population group.

    Built by the engine when a scenario declares a heterogeneous
    population: ``policies`` maps a group label to the policy its members
    follow, resolved through :attr:`MobileUser.group` (users with no
    group, or a group not in the map, fall back to ``default``).
    """

    name = "mixed"

    def __init__(
        self,
        policies: "Optional[Dict[str, MobilityPolicy]]" = None,
        default: "Optional[MobilityPolicy]" = None,
    ):
        self.policies: Dict[str, MobilityPolicy] = dict(policies or {})
        self.default: MobilityPolicy = default or FollowPathMobility()

    def policy_for(self, user: MobileUser) -> MobilityPolicy:
        group = getattr(user, "group", None)
        if group is not None and group in self.policies:
            return self.policies[group]
        return self.default

    def next_position(
        self,
        user: MobileUser,
        path: Sequence[Point],
        region: RectRegion,
        rng: np.random.Generator,
    ) -> Point:
        return self.policy_for(user).next_position(user, path, region, rng)


MOBILITY: Registry[MobilityPolicy] = Registry("mobility policy")
for _cls in (StationaryMobility, FollowPathMobility, RandomWaypointMobility, MixedMobility):
    MOBILITY.register(_cls)


def make_mobility(name: str) -> MobilityPolicy:
    """Instantiate a mobility policy by its registry name.

    Raises:
        ValueError: for an unknown name (lists the valid ones).
    """
    return MOBILITY.create(name)
