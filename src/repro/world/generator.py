"""Seeded world generation: the initial placement of tasks and users.

The paper's experiments (Section VI) draw task and user locations
uniformly at random in a 3000 m square, deadlines uniformly in [5, 15]
rounds, with 20 tasks each requiring 20 measurements.
:meth:`WorldGenerator.uniform` reproduces that; :meth:`WorldGenerator.clustered`
adds a stylised city — dense user clusters plus deliberately remote tasks —
to stress the popularity-inequality problem the paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.geometry.region import RectRegion
from repro.world.arrivals import ARRIVALS
from repro.world.population import apply_population, parse_population
from repro.world.task import SensingTask
from repro.world.user import MobileUser


@dataclass
class World:
    """The generated initial state: a region, its tasks, and its users."""

    region: RectRegion
    tasks: List[SensingTask]
    users: List[MobileUser]

    def __post_init__(self) -> None:
        for task in self.tasks:
            if not self.region.contains(task.location):
                raise ValueError(
                    f"task {task.task_id} at {task.location} lies outside {self.region}"
                )
        for user in self.users:
            if not self.region.contains(user.location):
                raise ValueError(
                    f"user {user.user_id} at {user.location} lies outside {self.region}"
                )

    @property
    def total_required_measurements(self) -> int:
        """:math:`\\sum_i \\varphi_i` — the denominator of Eq. 9."""
        return sum(t.required_measurements for t in self.tasks)

    def task_locations(self) -> List[Point]:
        return [t.location for t in self.tasks]

    def user_locations(self) -> List[Point]:
        return [u.location for u in self.users]


@dataclass(frozen=True)
class WorldGenerator:
    """Generates :class:`World` instances from explicit parameters.

    All randomness flows through the generator passed to each method, so
    the same seed always produces the same world (repetition i of an
    experiment uses a spawned child seed; see ``repro.simulation.rng``).

    Args:
        region: the deployment area.
        n_tasks: number of sensing tasks m.
        n_users: number of mobile users n.
        required_measurements: :math:`\\varphi` for every task.
        deadline_range: inclusive integer range for deadlines (in rounds).
        user_speed: walking speed in m/s.
        user_cost_per_meter: movement cost in $/m.
        user_time_budget: per-round time budget in seconds.
        heterogeneity: relative spread h of the user population.  The
            paper assumes identical users; with h > 0 each user's speed,
            movement cost, and time budget are drawn uniformly from
            ``[x (1 - h), x (1 + h)]`` around the configured value —
            modelling the real mix of cyclists, walkers, and busy people
            a deployment sees.  Must lie in [0, 1).
        release_range: inclusive integer range of task *release* rounds.
            The paper publishes everything at round 1 (the default
            ``(1, 1)``, which draws no extra randomness, so legacy seeds
            reproduce bit-exactly); a wider range staggers arrivals and
            each task's deadline becomes ``release - 1 + duration`` with
            the duration drawn from ``deadline_range``.
        arrival: arrival-stream registry name ("static", "poisson",
            "burst"; see :mod:`repro.world.arrivals`).  "static" with
            the default ``release_range`` is the paper's setup and draws
            nothing extra, so legacy seeds reproduce bit-exactly.
        arrival_kwargs: constructor knobs for the arrival stream.
        horizon: the simulated horizon in rounds — non-static streams
            clamp releases to it so every task is publishable in-run.
        population: group specs for a heterogeneous crowd (see
            :mod:`repro.world.population`); empty keeps the paper's
            homogeneous population and draws nothing extra.
    """

    region: RectRegion
    n_tasks: int
    n_users: int
    required_measurements: int
    deadline_range: Tuple[int, int]
    user_speed: float
    user_cost_per_meter: float
    user_time_budget: float
    heterogeneity: float = 0.0
    release_range: Tuple[int, int] = (1, 1)
    arrival: str = "static"
    arrival_kwargs: Dict[str, Any] = field(default_factory=dict)
    horizon: int = 15
    population: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ValueError(f"n_tasks must be >= 1, got {self.n_tasks}")
        if self.n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {self.n_users}")
        low, high = self.deadline_range
        if low < 1 or high < low:
            raise ValueError(f"bad deadline_range {self.deadline_range}")
        if not 0.0 <= self.heterogeneity < 1.0:
            raise ValueError(
                f"heterogeneity must be in [0, 1), got {self.heterogeneity}"
            )
        release_low, release_high = self.release_range
        if release_low < 1 or release_high < release_low:
            raise ValueError(f"bad release_range {self.release_range}")
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        # Fail at construction, not mid-generation: resolve the arrival
        # name and parse the population spec eagerly.
        ARRIVALS.get(self.arrival)
        parse_population(self.population)

    # -- internals -------------------------------------------------------

    def _draw_deadlines(self, rng: np.random.Generator) -> np.ndarray:
        low, high = self.deadline_range
        return rng.integers(low, high + 1, size=self.n_tasks)

    def _draw_releases(self, rng: np.random.Generator) -> np.ndarray:
        stream = ARRIVALS.create(self.arrival, **self.arrival_kwargs)
        return stream.releases(self.n_tasks, self.horizon, self.release_range, rng)

    def _make_tasks(
        self,
        locations: Sequence[Point],
        durations: Sequence[int],
        releases: Sequence[int],
    ) -> List[SensingTask]:
        return [
            SensingTask(
                task_id=i,
                location=loc,
                deadline=int(release) - 1 + int(duration),
                required_measurements=self.required_measurements,
                release_round=int(release),
            )
            for i, (loc, duration, release) in enumerate(
                zip(locations, durations, releases)
            )
        ]

    def _make_users(
        self, locations: Sequence[Point], rng: np.random.Generator
    ) -> List[MobileUser]:
        count = len(locations)
        if self.heterogeneity > 0.0:
            low = 1.0 - self.heterogeneity
            high = 1.0 + self.heterogeneity
            speed_factor = rng.uniform(low, high, size=count)
            cost_factor = rng.uniform(low, high, size=count)
            budget_factor = rng.uniform(low, high, size=count)
        else:
            # No draws at h == 0 so existing seeds reproduce bit-exactly.
            speed_factor = cost_factor = budget_factor = np.ones(count)
        users = [
            MobileUser(
                user_id=i,
                location=loc,
                speed=self.user_speed * float(speed_factor[i]),
                cost_per_meter=self.user_cost_per_meter * float(cost_factor[i]),
                time_budget=self.user_time_budget * float(budget_factor[i]),
            )
            for i, loc in enumerate(locations)
        ]
        apply_population(users, parse_population(self.population), rng)
        return users

    # -- public generators -------------------------------------------------

    def uniform(self, rng: np.random.Generator) -> World:
        """The paper's layout: tasks and users uniform over the region."""
        task_locations = self.region.sample(rng, self.n_tasks)
        user_locations = self.region.sample(rng, self.n_users)
        tasks = self._make_tasks(
            task_locations, self._draw_deadlines(rng), self._draw_releases(rng)
        )
        return World(self.region, tasks, self._make_users(user_locations, rng))

    def clustered(
        self,
        rng: np.random.Generator,
        n_clusters: int = 3,
        cluster_spread: float = 300.0,
        remote_task_fraction: float = 0.3,
    ) -> World:
        """A stylised city: clustered users, some deliberately remote tasks.

        Users live in ``n_clusters`` Gaussian clusters.  A
        ``remote_task_fraction`` of tasks is placed at the region location
        *farthest* from every cluster center (on a coarse grid), the rest
        near clusters — the sharpest version of the paper's popular/
        unpopular task inequality.

        Raises:
            ValueError: for non-positive ``n_clusters`` or a fraction
                outside [0, 1].
        """
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if not 0.0 <= remote_task_fraction <= 1.0:
            raise ValueError(
                f"remote_task_fraction must be in [0, 1], got {remote_task_fraction}"
            )
        centers = self.region.sample(rng, n_clusters)

        # Users: round-robin over clusters.
        user_locations: List[Point] = []
        for i in range(self.n_users):
            center = centers[i % n_clusters]
            user_locations.extend(
                self.region.sample_cluster(rng, center, cluster_spread, 1)
            )

        # Tasks: remote ones go to grid points far from all clusters.
        n_remote = int(round(self.n_tasks * remote_task_fraction))
        grid = self._far_grid_points(centers, n_remote)
        near_tasks = self.n_tasks - n_remote
        task_locations = list(grid)
        for i in range(near_tasks):
            center = centers[i % n_clusters]
            task_locations.extend(
                self.region.sample_cluster(rng, center, cluster_spread * 1.5, 1)
            )
        tasks = self._make_tasks(
            task_locations, self._draw_deadlines(rng), self._draw_releases(rng)
        )
        return World(self.region, tasks, self._make_users(user_locations, rng))

    def _far_grid_points(
        self, centers: Sequence[Point], count: int, grid_side: int = 12
    ) -> List[Point]:
        """The ``count`` grid points with maximal distance to any center."""
        if count == 0:
            return []
        xs = np.linspace(self.region.x_min, self.region.x_max, grid_side)
        ys = np.linspace(self.region.y_min, self.region.y_max, grid_side)
        candidates = [Point(float(x), float(y)) for x in xs for y in ys]
        scored = sorted(
            candidates,
            key=lambda p: min(p.distance_to(c) for c in centers),
            reverse=True,
        )
        return scored[:count]


def default_generator(
    n_users: int,
    n_tasks: int = 20,
    side: float = 3000.0,
    required_measurements: int = 20,
    deadline_range: Tuple[int, int] = (5, 15),
    user_speed: float = 2.0,
    user_cost_per_meter: float = 0.002,
    user_time_budget: float = 900.0,
    region: Optional[RectRegion] = None,
) -> WorldGenerator:
    """A :class:`WorldGenerator` preloaded with the paper's Section VI constants."""
    return WorldGenerator(
        region=region if region is not None else RectRegion.square(side),
        n_tasks=n_tasks,
        n_users=n_users,
        required_measurements=required_measurements,
        deadline_range=deadline_range,
        user_speed=user_speed,
        user_cost_per_meter=user_cost_per_meter,
        user_time_budget=user_time_budget,
    )
