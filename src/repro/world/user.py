"""The mobile user (worker) of the crowdsensing system.

A user owns its movement parameters (walking speed, movement cost per
meter) and a per-round time budget — the constraint side of the task
selection problem (Eq. 1).  Profit accounting lives here too so the
Fig. 5 experiment can read per-user profits directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.geometry.point import Point


@dataclass
class MobileUser:
    """A mobile user :math:`u_i`.

    Args:
        user_id: unique non-negative integer id.
        location: current position; updated by the mobility policy.
        speed: walking speed in m/s (paper default 2 m/s).
        cost_per_meter: movement cost in $/m (paper default 0.002 $/m).
        time_budget: per-round time budget :math:`B^k_{u_i}` in seconds.
        group: population-group name for heterogeneous crowds (None =
            the base population; see :mod:`repro.world.population`).
    """

    user_id: int
    location: Point
    speed: float
    cost_per_meter: float
    time_budget: float
    group: Optional[str] = None
    # --- mutable accounting state --------------------------------------
    home: Point = None  # type: ignore[assignment]  # set in __post_init__
    total_reward: float = 0.0
    total_cost: float = 0.0
    profit_by_round: Dict[int, float] = field(default_factory=dict)
    tasks_performed: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise ValueError(f"user_id must be non-negative, got {self.user_id}")
        if self.speed <= 0:
            raise ValueError(f"speed must be positive, got {self.speed}")
        if self.cost_per_meter < 0:
            raise ValueError(
                f"cost_per_meter must be non-negative, got {self.cost_per_meter}"
            )
        if self.time_budget < 0:
            raise ValueError(f"time_budget must be non-negative, got {self.time_budget}")
        if self.home is None:
            self.home = self.location

    # -- budget geometry -------------------------------------------------

    @property
    def max_travel_distance(self) -> float:
        """Farthest total distance reachable in one round: speed x budget."""
        return self.speed * self.time_budget

    def travel_time(self, distance: float) -> float:
        """Seconds needed to walk ``distance`` meters."""
        return distance / self.speed

    def travel_cost(self, distance: float) -> float:
        """Dollar cost of walking ``distance`` meters."""
        return distance * self.cost_per_meter

    # -- accounting --------------------------------------------------------

    @property
    def total_profit(self) -> float:
        """Lifetime profit: rewards earned minus movement cost."""
        return self.total_reward - self.total_cost

    def record_round(self, round_no: int, reward: float, cost: float) -> None:
        """Record the outcome of one round for this user.

        Args:
            round_no: 1-based round number.
            reward: total rewards received this round.
            cost: total movement cost incurred this round.
        """
        if round_no < 1:
            raise ValueError(f"round_no must be >= 1, got {round_no}")
        if reward < 0 or cost < 0:
            raise ValueError(
                f"reward and cost must be non-negative, got {reward}, {cost}"
            )
        self.total_reward += reward
        self.total_cost += cost
        self.profit_by_round[round_no] = (
            self.profit_by_round.get(round_no, 0.0) + reward - cost
        )

    def profit_in_round(self, round_no: int) -> float:
        """Profit earned in round ``round_no`` (0.0 if the user sat out)."""
        return self.profit_by_round.get(round_no, 0.0)
