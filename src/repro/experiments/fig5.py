"""Fig. 5: dynamic-programming vs greedy task selection.

Fig. 5(a) — "the average profit per user against the number of users at
the sensing round 2"; Fig. 5(b) — a boxplot of the profit difference
between the two algorithms across experiments.

Protocol.  Per repetition we play round 1 with the on-demand mechanism
(DP selector), freeze the world, and hand the *identical* round-2
selection problems to both solvers.  Profit is the Eq. 1 objective of
each user's chosen selection.  Pairing on identical instances is what
makes the paper's claim — "the dynamic programming based task selection
algorithm always obtains a higher profit for any user" — exact rather
than statistical: DP is optimal per instance (Theorem 1/2), so every
per-user difference is >= 0 by construction, and the experiment verifies
the implementation honours that.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.series import ExperimentResult, Series, SeriesPoint
from repro.analysis.stats import BoxplotSummary, summarize_box
from repro.experiments.runner import (
    default_repetitions,
    default_user_counts,
)
from repro.selection import SELECTORS
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import child_seed

#: The round the paper snapshots (Fig. 5(a) caption: "at the sensing round 2").
SNAPSHOT_ROUND = 2


def paired_round2_profits(
    config: SimulationConfig,
    repetitions: int,
    base_seed: int = 0,
) -> Tuple[List[float], List[float], List[float]]:
    """(dp_means, greedy_means, per-user differences) across repetitions.

    Per repetition: play rounds before :data:`SNAPSHOT_ROUND`, then solve
    every user's round-2 problem with both selectors on the frozen world.
    The first two lists hold the per-repetition average profit per user;
    the third holds every individual per-user difference (the Fig. 5(b)
    population).
    """
    dp = SELECTORS.create("dp")
    greedy = SELECTORS.create("greedy")
    dp_means: List[float] = []
    greedy_means: List[float] = []
    differences: List[float] = []
    for rep in range(repetitions):
        engine = SimulationEngine(
            config.with_overrides(seed=child_seed(base_seed, rep), selector="dp")
        )
        for _ in range(SNAPSHOT_ROUND - 1):
            if engine.finished:
                break
            engine.step()
        if engine.finished:
            # Every task finished before the snapshot round: both solvers
            # face empty markets, profits are zero.
            dp_means.append(0.0)
            greedy_means.append(0.0)
            continue
        dp_profits: List[float] = []
        greedy_profits: List[float] = []
        for _user, problem in engine.build_problems():
            dp_profit = dp.select(problem).profit
            greedy_profit = greedy.select(problem).profit
            dp_profits.append(dp_profit)
            greedy_profits.append(greedy_profit)
            differences.append(dp_profit - greedy_profit)
        dp_means.append(sum(dp_profits) / len(dp_profits))
        greedy_means.append(sum(greedy_profits) / len(greedy_profits))
    return dp_means, greedy_means, differences


def fig5a(
    user_counts: Optional[Sequence[int]] = None,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Average round-2 profit per user: DP vs greedy, users 40–140."""
    user_counts = list(user_counts if user_counts is not None else default_user_counts())
    repetitions = repetitions if repetitions is not None else default_repetitions()
    base_config = base_config if base_config is not None else SimulationConfig()

    dp_points: List[SeriesPoint] = []
    greedy_points: List[SeriesPoint] = []
    for n_users in user_counts:
        config = base_config.with_overrides(n_users=n_users)
        dp_means, greedy_means, _ = paired_round2_profits(
            config, repetitions, base_seed
        )
        dp_points.append(SeriesPoint.from_values(n_users, dp_means))
        greedy_points.append(SeriesPoint.from_values(n_users, greedy_means))

    return ExperimentResult(
        experiment_id="fig5a",
        title="Average profit per user at round 2 (DP vs greedy)",
        x_label="users",
        y_label="average profit per user ($)",
        series=[
            Series(label="dp", points=tuple(dp_points)),
            Series(label="greedy", points=tuple(greedy_points)),
        ],
        metadata={"repetitions": repetitions, "base_seed": base_seed,
                  "snapshot_round": SNAPSHOT_ROUND},
    )


def fig5b(
    user_counts: Optional[Sequence[int]] = None,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Boxplot of per-user DP-minus-greedy profit differences.

    One :class:`BoxplotSummary` per user count (in the metadata); the
    series expose the five numbers so :meth:`ExperimentResult.rows`
    renders a sensible table.
    """
    user_counts = list(user_counts if user_counts is not None else default_user_counts())
    repetitions = repetitions if repetitions is not None else default_repetitions()
    base_config = base_config if base_config is not None else SimulationConfig()

    summaries: Dict[int, BoxplotSummary] = {}
    for n_users in user_counts:
        config = base_config.with_overrides(n_users=n_users)
        _, _, differences = paired_round2_profits(config, repetitions, base_seed)
        summaries[n_users] = summarize_box(differences)

    def series_for(attribute: str) -> Series:
        return Series(
            label=attribute,
            points=tuple(
                SeriesPoint(
                    x=n_users,
                    mean=getattr(summaries[n_users], attribute),
                    n=summaries[n_users].n,
                )
                for n_users in user_counts
            ),
        )

    return ExperimentResult(
        experiment_id="fig5b",
        title="Per-user profit difference, DP minus greedy (boxplot)",
        x_label="users",
        y_label="profit difference ($)",
        series=[series_for(a) for a in ("minimum", "q1", "median", "q3", "maximum")],
        metadata={
            "repetitions": repetitions,
            "base_seed": base_seed,
            "snapshot_round": SNAPSHOT_ROUND,
            "outlier_counts": {
                n: len(summaries[n].outliers) for n in user_counts
            },
        },
    )
