"""Repetition running and aggregation.

The paper runs every configuration 100 times and reports the mean.  The
runner reproduces that protocol with deterministic per-repetition seeds
(:func:`repro.simulation.rng.child_seed`), so repetition i of any
experiment is replayable in isolation and mechanisms compared at the
same (base_seed, i) see the *same generated world* — the comparisons are
paired, which slashes between-mechanism variance.

Checkpointing: both repeat loops accept an optional **journal** — a path
(or a prebuilt :class:`~repro.resilience.journal.RunJournal`) recording
one fsync'd line per completed repetition.  A campaign interrupted at
repetition 87 resumes at the first missing repetition and, because
repetition seeds are pure functions of ``(base_seed, rep)``, the resumed
campaign's aggregate is bit-identical to an uninterrupted one.

Parallelism: both repeat loops also accept ``workers`` — the number of
simulation processes to fan repetitions across (default serial).  Only
the simulations move to workers; metrics (arbitrary closures, often
unpicklable) are evaluated in the parent as each run returns, and the
journal is likewise written parent-side, so crash-safety and the fsync
discipline are unchanged.  Because each repetition is seeded purely by
``(base_seed, rep)`` and values are reassembled in repetition order, a
parallel campaign's aggregate is bit-identical to a serial one.

Observability: both repeat loops accept a ``tracer`` (per-repetition
spans) and a ``metrics`` registry.  Each simulated repetition's
engine-side metric snapshots (:meth:`SimulationResult.metrics_totals`)
travel back from the worker with the result and are folded into the
campaign registry **in repetition order** once the loop completes — the
fold is a pure merge of per-repetition snapshots, so a parallel
campaign's registry is bit-identical to a serial one no matter the
completion order.  Repetitions loaded from a journal were not executed
here and contribute nothing.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs.log import bind, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.resilience.journal import RunJournal, config_fingerprint
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate
from repro.simulation.events import SimulationResult
from repro.simulation.rng import child_seed

log = get_logger("experiments.runner")

#: A metric is any scalar function of a finished run.
MetricFn = Callable[[SimulationResult], float]

#: How callers may specify a journal: a path or a prebuilt RunJournal.
JournalSpec = Union[str, Path, RunJournal, None]

#: The paper's Section VI sweep axis.
PAPER_USER_COUNTS = (40, 60, 80, 100, 120, 140)

#: The paper's repetition count; our default is lower for iteration speed.
PAPER_REPETITIONS = 100


def default_repetitions(fallback: int = 20) -> int:
    """Repetitions per configuration: ``REPRO_REPS`` env var, else ``fallback``.

    Raises:
        ValueError: if the env var is set but not a positive integer.
    """
    raw = os.environ.get("REPRO_REPS")
    if raw is None:
        return fallback
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_REPS must be an integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"REPRO_REPS must be >= 1, got {value}")
    return value


def default_user_counts() -> Sequence[int]:
    """The user-count sweep axis (the paper's 40..140 step 20)."""
    return PAPER_USER_COUNTS


def _open_journal(
    journal: JournalSpec,
    config: SimulationConfig,
    base_seed: int,
    **context,
) -> Optional[RunJournal]:
    """Resolve a journal spec against this campaign's identity.

    The fingerprint covers the full config, the base seed, and the
    metric names/kind, so a stale journal from a different campaign is
    rejected (ConfigError) instead of silently mixed in.  It cannot
    cover the metric *functions* themselves — resuming assumes the
    metric definitions are unchanged, which the docstring contract of
    every experiment module guarantees.
    """
    if journal is None or isinstance(journal, RunJournal):
        return journal
    fingerprint = config_fingerprint(config, base_seed=base_seed, **context)
    return RunJournal(Path(journal), fingerprint)


def _seeded_run(config: SimulationConfig, seed: int) -> SimulationResult:
    """One seeded simulation (top-level so worker processes can pickle it)."""
    return simulate(config.with_overrides(seed=seed))


def _iter_repetitions(
    config: SimulationConfig,
    reps: Sequence[int],
    base_seed: int,
    workers: Optional[int],
    tracer=NULL_TRACER,
) -> Iterator[Tuple[int, SimulationResult]]:
    """Yield ``(rep, result)`` for every repetition in ``reps``.

    Serial (``workers`` None or <= 1) yields in repetition order; with a
    process pool, results stream back in *completion* order — callers
    must not rely on ordering (both repeat loops reassemble by rep).
    The pool is bounded to ``2 * workers`` simulations in flight so a
    long campaign never materialises every pending SimulationResult at
    once.

    Serial repetitions run inside a ``repetition`` span; parallel ones
    run in worker processes the parent's tracer cannot reach, so only
    their collection is spanned (``repetition-collect``).
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers is None or workers <= 1 or len(reps) <= 1:
        for rep in reps:
            with tracer.span("repetition", cat="rep", rep=rep), bind(rep=rep):
                result = _seeded_run(config, child_seed(base_seed, rep))
            yield rep, result
        return
    queue = list(reps)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        in_flight = {}
        while queue or in_flight:
            while queue and len(in_flight) < 2 * workers:
                rep = queue.pop(0)
                future = pool.submit(_seeded_run, config, child_seed(base_seed, rep))
                in_flight[future] = rep
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                rep = in_flight.pop(future)
                with tracer.span("repetition-collect", cat="rep", rep=rep):
                    result = future.result()
                yield rep, result


def repeat_metrics(
    config: SimulationConfig,
    metrics: Dict[str, MetricFn],
    repetitions: int,
    base_seed: int = 0,
    journal: JournalSpec = None,
    workers: Optional[int] = None,
    tracer=NULL_TRACER,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, List[float]]:
    """Run ``repetitions`` seeded simulations; collect each metric's values.

    Args:
        config: the configuration to repeat (its own ``seed`` is ignored —
            repetition seeds come from ``base_seed``).
        metrics: named scalar metrics evaluated on every run.
        repetitions: how many runs.
        base_seed: root of the per-repetition seed derivation.
        journal: optional checkpoint file (path or RunJournal).  Already-
            journaled repetitions are *not* re-simulated: their values
            load from the journal, and only missing repetitions run —
            this is how an interrupted campaign resumes.
        workers: simulation processes to fan repetitions across (None or
            1 = serial).  Metrics and journaling stay in the parent, and
            values are assembled in repetition order, so the aggregate
            is bit-identical to a serial run and the journal remains
            resume-compatible.
        tracer: optional span tracer for per-repetition spans (default:
            the no-op tracer).
        registry: optional campaign metrics registry; each simulated
            repetition's engine metrics are folded in **in repetition
            order** after the loop, so parallel and serial campaigns
            produce bit-identical registries (see module docstring).

    Raises:
        ValueError: for a non-positive repetition or worker count.
        ConfigError: if the journal belongs to a different campaign.
        ResultCorruption: if the journal is damaged mid-stream.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    journal_log = _open_journal(
        journal, config, base_seed, kind="metrics", metrics=sorted(metrics)
    )
    per_rep: Dict[int, Dict[str, float]] = {}
    missing: List[int] = []
    for rep in range(repetitions):
        entry = journal_log.get(rep) if journal_log is not None else None
        if entry is not None:
            per_rep[rep] = entry["values"]
        else:
            missing.append(rep)
    if journal_log is not None and per_rep:
        log.info(
            "resuming campaign from journal",
            extra={
                "journal": str(journal_log.path),
                "completed": len(per_rep),
                "missing": len(missing),
            },
        )
    rep_registries: Dict[int, MetricsRegistry] = {}
    for rep, result in _iter_repetitions(
        config, missing, base_seed, workers, tracer
    ):
        values_for_rep = {name: metric(result) for name, metric in metrics.items()}
        if journal_log is not None:
            journal_log.record(rep, {"values": values_for_rep})
        per_rep[rep] = values_for_rep
        if registry is not None:
            rep_registries[rep] = result.metrics_totals()
    if registry is not None:
        for rep in sorted(rep_registries):
            registry.merge(rep_registries[rep])
    return {
        name: [per_rep[rep][name] for rep in range(repetitions)]
        for name in metrics
    }


def repeat_metric(
    config: SimulationConfig,
    metric: MetricFn,
    repetitions: int,
    base_seed: int = 0,
    journal: JournalSpec = None,
    workers: Optional[int] = None,
    tracer=NULL_TRACER,
    registry: Optional[MetricsRegistry] = None,
) -> List[float]:
    """Single-metric convenience wrapper over :func:`repeat_metrics`."""
    return repeat_metrics(
        config, {"metric": metric}, repetitions, base_seed,
        journal=journal, workers=workers, tracer=tracer, registry=registry,
    )["metric"]


def repeat_series_metric(
    config: SimulationConfig,
    series_metric: Callable[[SimulationResult], Sequence[float]],
    repetitions: int,
    base_seed: int = 0,
    journal: JournalSpec = None,
    workers: Optional[int] = None,
    tracer=NULL_TRACER,
    registry: Optional[MetricsRegistry] = None,
) -> List[List[float]]:
    """Like :func:`repeat_metric` for metrics that return a whole series
    (e.g. coverage-by-round).  Result is ``[per-position values][rep]``-
    transposed: one list of repetition values per series position.

    Supports the same ``journal`` checkpointing, ``workers``
    parallelism, ``tracer`` spans, and campaign ``registry`` merge as
    :func:`repeat_metrics` (one journal line per completed repetition's
    full series).

    Raises:
        ValueError: if repetitions disagree on the series length.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    journal_log = _open_journal(journal, config, base_seed, kind="series")
    per_rep: Dict[int, List[float]] = {}
    missing: List[int] = []
    for rep in range(repetitions):
        entry = journal_log.get(rep) if journal_log is not None else None
        if entry is not None:
            per_rep[rep] = entry["series"]
        else:
            missing.append(rep)
    if journal_log is not None and per_rep:
        log.info(
            "resuming campaign from journal",
            extra={
                "journal": str(journal_log.path),
                "completed": len(per_rep),
                "missing": len(missing),
            },
        )
    rep_registries: Dict[int, MetricsRegistry] = {}
    for rep, result in _iter_repetitions(
        config, missing, base_seed, workers, tracer
    ):
        series = list(series_metric(result))
        if journal_log is not None:
            journal_log.record(rep, {"series": series})
        per_rep[rep] = series
        if registry is not None:
            rep_registries[rep] = result.metrics_totals()
    if registry is not None:
        for rep in sorted(rep_registries):
            registry.merge(rep_registries[rep])
    collected = [per_rep[rep] for rep in range(repetitions)]
    lengths = {len(entry) for entry in collected}
    if len(lengths) != 1:
        raise ValueError(f"series metric returned inconsistent lengths: {lengths}")
    length = lengths.pop()
    return [[entry[i] for entry in collected] for i in range(length)]
