"""Repetition running and aggregation.

The paper runs every configuration 100 times and reports the mean.  The
runner reproduces that protocol with deterministic per-repetition seeds
(:func:`repro.simulation.rng.child_seed`), so repetition i of any
experiment is replayable in isolation and mechanisms compared at the
same (base_seed, i) see the *same generated world* — the comparisons are
paired, which slashes between-mechanism variance.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Sequence

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate
from repro.simulation.events import SimulationResult
from repro.simulation.rng import child_seed

#: A metric is any scalar function of a finished run.
MetricFn = Callable[[SimulationResult], float]

#: The paper's Section VI sweep axis.
PAPER_USER_COUNTS = (40, 60, 80, 100, 120, 140)

#: The paper's repetition count; our default is lower for iteration speed.
PAPER_REPETITIONS = 100


def default_repetitions(fallback: int = 20) -> int:
    """Repetitions per configuration: ``REPRO_REPS`` env var, else ``fallback``.

    Raises:
        ValueError: if the env var is set but not a positive integer.
    """
    raw = os.environ.get("REPRO_REPS")
    if raw is None:
        return fallback
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_REPS must be an integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"REPRO_REPS must be >= 1, got {value}")
    return value


def default_user_counts() -> Sequence[int]:
    """The user-count sweep axis (the paper's 40..140 step 20)."""
    return PAPER_USER_COUNTS


def repeat_metrics(
    config: SimulationConfig,
    metrics: Dict[str, MetricFn],
    repetitions: int,
    base_seed: int = 0,
) -> Dict[str, List[float]]:
    """Run ``repetitions`` seeded simulations; collect each metric's values.

    Args:
        config: the configuration to repeat (its own ``seed`` is ignored —
            repetition seeds come from ``base_seed``).
        metrics: named scalar metrics evaluated on every run.
        repetitions: how many runs.
        base_seed: root of the per-repetition seed derivation.

    Raises:
        ValueError: for a non-positive repetition count.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    values: Dict[str, List[float]] = {name: [] for name in metrics}
    for rep in range(repetitions):
        run_config = config.with_overrides(seed=child_seed(base_seed, rep))
        result = simulate(run_config)
        for name, metric in metrics.items():
            values[name].append(metric(result))
    return values


def repeat_metric(
    config: SimulationConfig,
    metric: MetricFn,
    repetitions: int,
    base_seed: int = 0,
) -> List[float]:
    """Single-metric convenience wrapper over :func:`repeat_metrics`."""
    return repeat_metrics(config, {"metric": metric}, repetitions, base_seed)["metric"]


def repeat_series_metric(
    config: SimulationConfig,
    series_metric: Callable[[SimulationResult], Sequence[float]],
    repetitions: int,
    base_seed: int = 0,
) -> List[List[float]]:
    """Like :func:`repeat_metric` for metrics that return a whole series
    (e.g. coverage-by-round).  Result is ``[per-position values][rep]``-
    transposed: one list of repetition values per series position.

    Raises:
        ValueError: if repetitions disagree on the series length.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    collected: List[Sequence[float]] = []
    for rep in range(repetitions):
        run_config = config.with_overrides(seed=child_seed(base_seed, rep))
        collected.append(list(series_metric(simulate(run_config))))
    lengths = {len(entry) for entry in collected}
    if len(lengths) != 1:
        raise ValueError(f"series metric returned inconsistent lengths: {lengths}")
    length = lengths.pop()
    return [[entry[i] for entry in collected] for i in range(length)]
