"""Repetition running and aggregation.

The paper runs every configuration 100 times and reports the mean.  The
runner reproduces that protocol with deterministic per-repetition seeds
(:func:`repro.simulation.rng.child_seed`), so repetition i of any
experiment is replayable in isolation and mechanisms compared at the
same (base_seed, i) see the *same generated world* — the comparisons are
paired, which slashes between-mechanism variance.

Checkpointing: both repeat loops accept an optional **journal** — a path
(or a prebuilt :class:`~repro.resilience.journal.RunJournal`) recording
one fsync'd line per completed repetition.  A campaign interrupted at
repetition 87 resumes at the first missing repetition and, because
repetition seeds are pure functions of ``(base_seed, rep)``, the resumed
campaign's aggregate is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.resilience.journal import RunJournal, config_fingerprint
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate
from repro.simulation.events import SimulationResult
from repro.simulation.rng import child_seed

#: A metric is any scalar function of a finished run.
MetricFn = Callable[[SimulationResult], float]

#: How callers may specify a journal: a path or a prebuilt RunJournal.
JournalSpec = Union[str, Path, RunJournal, None]

#: The paper's Section VI sweep axis.
PAPER_USER_COUNTS = (40, 60, 80, 100, 120, 140)

#: The paper's repetition count; our default is lower for iteration speed.
PAPER_REPETITIONS = 100


def default_repetitions(fallback: int = 20) -> int:
    """Repetitions per configuration: ``REPRO_REPS`` env var, else ``fallback``.

    Raises:
        ValueError: if the env var is set but not a positive integer.
    """
    raw = os.environ.get("REPRO_REPS")
    if raw is None:
        return fallback
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_REPS must be an integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"REPRO_REPS must be >= 1, got {value}")
    return value


def default_user_counts() -> Sequence[int]:
    """The user-count sweep axis (the paper's 40..140 step 20)."""
    return PAPER_USER_COUNTS


def _open_journal(
    journal: JournalSpec,
    config: SimulationConfig,
    base_seed: int,
    **context,
) -> Optional[RunJournal]:
    """Resolve a journal spec against this campaign's identity.

    The fingerprint covers the full config, the base seed, and the
    metric names/kind, so a stale journal from a different campaign is
    rejected (ConfigError) instead of silently mixed in.  It cannot
    cover the metric *functions* themselves — resuming assumes the
    metric definitions are unchanged, which the docstring contract of
    every experiment module guarantees.
    """
    if journal is None or isinstance(journal, RunJournal):
        return journal
    fingerprint = config_fingerprint(config, base_seed=base_seed, **context)
    return RunJournal(Path(journal), fingerprint)


def repeat_metrics(
    config: SimulationConfig,
    metrics: Dict[str, MetricFn],
    repetitions: int,
    base_seed: int = 0,
    journal: JournalSpec = None,
) -> Dict[str, List[float]]:
    """Run ``repetitions`` seeded simulations; collect each metric's values.

    Args:
        config: the configuration to repeat (its own ``seed`` is ignored —
            repetition seeds come from ``base_seed``).
        metrics: named scalar metrics evaluated on every run.
        repetitions: how many runs.
        base_seed: root of the per-repetition seed derivation.
        journal: optional checkpoint file (path or RunJournal).  Already-
            journaled repetitions are *not* re-simulated: their values
            load from the journal, and only missing repetitions run —
            this is how an interrupted campaign resumes.

    Raises:
        ValueError: for a non-positive repetition count.
        ConfigError: if the journal belongs to a different campaign.
        ResultCorruption: if the journal is damaged mid-stream.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    log = _open_journal(
        journal, config, base_seed, kind="metrics", metrics=sorted(metrics)
    )
    values: Dict[str, List[float]] = {name: [] for name in metrics}
    for rep in range(repetitions):
        entry = log.get(rep) if log is not None else None
        if entry is not None:
            per_rep = entry["values"]
        else:
            run_config = config.with_overrides(seed=child_seed(base_seed, rep))
            result = simulate(run_config)
            per_rep = {name: metric(result) for name, metric in metrics.items()}
            if log is not None:
                log.record(rep, {"values": per_rep})
        for name in metrics:
            values[name].append(per_rep[name])
    return values


def repeat_metric(
    config: SimulationConfig,
    metric: MetricFn,
    repetitions: int,
    base_seed: int = 0,
    journal: JournalSpec = None,
) -> List[float]:
    """Single-metric convenience wrapper over :func:`repeat_metrics`."""
    return repeat_metrics(
        config, {"metric": metric}, repetitions, base_seed, journal=journal
    )["metric"]


def repeat_series_metric(
    config: SimulationConfig,
    series_metric: Callable[[SimulationResult], Sequence[float]],
    repetitions: int,
    base_seed: int = 0,
    journal: JournalSpec = None,
) -> List[List[float]]:
    """Like :func:`repeat_metric` for metrics that return a whole series
    (e.g. coverage-by-round).  Result is ``[per-position values][rep]``-
    transposed: one list of repetition values per series position.

    Supports the same ``journal`` checkpointing as :func:`repeat_metrics`
    (one journal line per completed repetition's full series).

    Raises:
        ValueError: if repetitions disagree on the series length.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    log = _open_journal(journal, config, base_seed, kind="series")
    collected: List[Sequence[float]] = []
    for rep in range(repetitions):
        entry = log.get(rep) if log is not None else None
        if entry is not None:
            series = entry["series"]
        else:
            run_config = config.with_overrides(seed=child_seed(base_seed, rep))
            series = list(series_metric(simulate(run_config)))
            if log is not None:
                log.record(rep, {"series": series})
        collected.append(series)
    lengths = {len(entry) for entry in collected}
    if len(lengths) != 1:
        raise ValueError(f"series metric returned inconsistent lengths: {lengths}")
    length = lengths.pop()
    return [[entry[i] for entry in collected] for i in range(length)]
