"""Ablation studies on the design choices DESIGN.md §5 calls out.

None of these appear in the paper; they answer the "why is the mechanism
built this way" questions a reader is left with:

- :func:`level_count_ablation` — how sensitive are coverage/completeness
  to the number of demand levels N, including the level-free
  (proportional) variant?
- :func:`factor_ablation` — drop each demand factor (deadline, progress,
  neighbour scarcity) by zeroing its weight and renormalising.
- :func:`mobility_ablation` — are the headline results an artifact of
  the inter-round mobility assumption?
- :func:`weight_method_ablation` — paper's column-normalisation weights
  vs the classical eigenvector weights.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.series import ExperimentResult, Series, SeriesPoint
from repro.core.demand import DemandWeights
from repro.core.mechanisms import OnDemandMechanism
from repro.experiments.runner import default_repetitions
from repro.metrics import overall_completeness, coverage
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import SimulationResult
from repro.simulation.rng import child_seed

#: Metrics every ablation reports, as (label, fn) pairs.
ABLATION_METRICS: Tuple[Tuple[str, Callable[[SimulationResult], float]], ...] = (
    ("coverage_pct", lambda result: 100.0 * coverage(result)),
    ("completeness_pct", lambda result: 100.0 * overall_completeness(result)),
)


def _run_variants(
    experiment_id: str,
    title: str,
    variants: Dict[str, Callable[[int], SimulationEngine]],
    repetitions: int,
    base_seed: int,
) -> ExperimentResult:
    """Shared scaffolding: a bar-chart-shaped result, one x per variant.

    ``variants`` maps a label to an engine factory taking the repetition
    seed; metrics are averaged over repetitions.
    """
    metric_series: Dict[str, List[SeriesPoint]] = {
        label: [] for label, _fn in ABLATION_METRICS
    }
    labels = list(variants)
    for position, label in enumerate(labels):
        values: Dict[str, List[float]] = {name: [] for name, _fn in ABLATION_METRICS}
        for rep in range(repetitions):
            result = variants[label](child_seed(base_seed, rep)).run()
            for name, fn in ABLATION_METRICS:
                values[name].append(fn(result))
        for name, _fn in ABLATION_METRICS:
            metric_series[name].append(SeriesPoint.from_values(position, values[name]))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="variant",
        y_label="percent",
        series=[
            Series(label=name, points=tuple(points))
            for name, points in metric_series.items()
        ],
        metadata={
            "variants": labels,
            "repetitions": repetitions,
            "base_seed": base_seed,
        },
    )


def level_count_ablation(
    level_counts: Sequence[int] = (2, 5, 10),
    repetitions: Optional[int] = None,
    n_users: int = 100,
    base_seed: int = 0,
) -> ExperimentResult:
    """Coverage/completeness vs the number of demand levels N (+ level-free).

    The reward *range* is held at the paper's [r0, r0 + 2.0] for every N
    by scaling the per-level step to 2 / (N - 1); otherwise a larger N
    under the same budget would push Eq. 9's base reward negative and
    the comparison would conflate granularity with price range.
    """
    repetitions = repetitions if repetitions is not None else default_repetitions()
    paper_span = 0.5 * (5 - 1)  # lambda * (N - 1) at the paper's constants
    variants: Dict[str, Callable[[int], SimulationEngine]] = {}
    for count in level_counts:
        step = paper_span / (count - 1) if count > 1 else 0.0
        config = SimulationConfig(
            n_users=n_users, level_count=count, reward_step=step
        )

        def factory(seed: int, config: SimulationConfig = config) -> SimulationEngine:
            return SimulationEngine(config.with_overrides(seed=seed))

        variants[f"N={count}"] = factory
    proportional = SimulationConfig(n_users=n_users, mechanism="proportional")

    def proportional_factory(seed: int) -> SimulationEngine:
        return SimulationEngine(proportional.with_overrides(seed=seed))

    variants["level-free"] = proportional_factory
    return _run_variants(
        "ablation-levels",
        "Demand-level count ablation",
        variants,
        repetitions,
        base_seed,
    )


def factor_ablation(
    repetitions: Optional[int] = None,
    n_users: int = 100,
    base_seed: int = 0,
) -> ExperimentResult:
    """Drop each demand factor in turn by zeroing its AHP weight.

    The remaining two weights are renormalised to sum to 1, keeping the
    demand scale (and therefore the reward range) unchanged.
    """
    repetitions = repetitions if repetitions is not None else default_repetitions()
    full = DemandWeights.from_ahp()
    named = {
        "full": (full.deadline, full.progress, full.scarcity),
        "no-deadline": (0.0, full.progress, full.scarcity),
        "no-progress": (full.deadline, 0.0, full.scarcity),
        "no-scarcity": (full.deadline, full.progress, 0.0),
    }
    config = SimulationConfig(n_users=n_users)
    variants: Dict[str, Callable[[int], SimulationEngine]] = {}
    for label, raw in named.items():
        total = sum(raw)
        weights = DemandWeights(
            deadline=raw[0] / total, progress=raw[1] / total, scarcity=raw[2] / total
        )

        def factory(seed: int, weights: DemandWeights = weights) -> SimulationEngine:
            mechanism = OnDemandMechanism(
                budget=config.budget,
                step=config.reward_step,
                neighbour_radius=config.neighbour_radius,
                weights=weights,
            )
            return SimulationEngine(
                config.with_overrides(seed=seed), mechanism=mechanism
            )

        variants[label] = factory
    return _run_variants(
        "ablation-factors",
        "Demand-factor ablation",
        variants,
        repetitions,
        base_seed,
    )


def mobility_ablation(
    repetitions: Optional[int] = None,
    n_users: int = 100,
    base_seed: int = 0,
) -> ExperimentResult:
    """The on-demand headline metrics under each mobility policy."""
    repetitions = repetitions if repetitions is not None else default_repetitions()
    variants: Dict[str, Callable[[int], SimulationEngine]] = {}
    for policy in ("stationary", "follow-path", "random-waypoint"):
        config = SimulationConfig(n_users=n_users, mobility=policy)

        def factory(seed: int, config: SimulationConfig = config) -> SimulationEngine:
            return SimulationEngine(config.with_overrides(seed=seed))

        variants[policy] = factory
    return _run_variants(
        "ablation-mobility",
        "Mobility-policy ablation",
        variants,
        repetitions,
        base_seed,
    )


def arrivals_ablation(
    repetitions: Optional[int] = None,
    n_users: int = 100,
    base_seed: int = 0,
) -> ExperimentResult:
    """Everything-at-round-1 (paper) vs staggered task arrivals.

    With releases drawn from rounds 1–8, half the workload appears while
    the campaign is already under way — the streaming setting of the
    authors' companion work.  Variants pair the on-demand and fixed
    mechanisms under both arrival patterns; the demand indicator adapts
    to newly released tasks automatically (a fresh task has zero progress
    and a near deadline, so its demand is born high).
    """
    repetitions = repetitions if repetitions is not None else default_repetitions()
    variants: Dict[str, Callable[[int], SimulationEngine]] = {}
    for label, release_range in (("batch", (1, 1)), ("staggered", (1, 8))):
        for mechanism in ("on-demand", "fixed"):
            config = SimulationConfig(
                n_users=n_users,
                mechanism=mechanism,
                release_range=release_range,
                deadline_range=(5, 8) if release_range != (1, 1) else (5, 15),
            )

            def factory(seed: int, config: SimulationConfig = config) -> SimulationEngine:
                return SimulationEngine(config.with_overrides(seed=seed))

            variants[f"{mechanism}/{label}"] = factory
    return _run_variants(
        "ablation-arrivals",
        "Batch vs staggered task arrivals",
        variants,
        repetitions,
        base_seed,
    )


def adaptive_budget_ablation(
    user_counts: Sequence[int] = (40, 100),
    repetitions: Optional[int] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Static Eq. 9 pricing vs budget-recycling adaptive pricing.

    The adaptive mechanism re-derives the reward ladder each round from
    the remaining budget and remaining work (see
    :class:`~repro.core.mechanisms.adaptive.AdaptiveBudgetMechanism`).
    The interesting regime is low user counts, where the static schedule
    leaves the most budget unspent.
    """
    repetitions = repetitions if repetitions is not None else default_repetitions()
    variants: Dict[str, Callable[[int], SimulationEngine]] = {}
    for n_users in user_counts:
        for mechanism in ("on-demand", "adaptive"):
            config = SimulationConfig(n_users=n_users, mechanism=mechanism)

            def factory(seed: int, config: SimulationConfig = config) -> SimulationEngine:
                return SimulationEngine(config.with_overrides(seed=seed))

            variants[f"{mechanism}@{n_users}u"] = factory
    return _run_variants(
        "ablation-adaptive",
        "Static vs budget-recycling pricing",
        variants,
        repetitions,
        base_seed,
    )


def heterogeneity_ablation(
    spreads: Sequence[float] = (0.0, 0.25, 0.5),
    repetitions: Optional[int] = None,
    n_users: int = 100,
    base_seed: int = 0,
) -> ExperimentResult:
    """Robustness to a heterogeneous user population.

    The paper evaluates identical users (2 m/s, 0.002 $/m, one time
    budget); real crowds are not.  Each variant draws per-user speed,
    movement cost, and time budget uniformly within ±spread of the paper
    constants and re-measures the headline metrics.
    """
    repetitions = repetitions if repetitions is not None else default_repetitions()
    variants: Dict[str, Callable[[int], SimulationEngine]] = {}
    for spread in spreads:
        config = SimulationConfig(n_users=n_users, heterogeneity=spread)

        def factory(seed: int, config: SimulationConfig = config) -> SimulationEngine:
            return SimulationEngine(config.with_overrides(seed=seed))

        variants[f"h={spread:g}"] = factory
    return _run_variants(
        "ablation-heterogeneity",
        "User-heterogeneity ablation",
        variants,
        repetitions,
        base_seed,
    )


def weight_method_ablation(
    repetitions: Optional[int] = None,
    n_users: int = 100,
    base_seed: int = 0,
) -> ExperimentResult:
    """AHP weight extraction: column-normalisation (paper) vs eigenvector."""
    repetitions = repetitions if repetitions is not None else default_repetitions()
    variants: Dict[str, Callable[[int], SimulationEngine]] = {}
    for method in ("column-normalization", "eigenvector"):
        config = SimulationConfig(
            n_users=n_users,
            mechanism_kwargs={"weight_method": method},
        )

        def factory(seed: int, config: SimulationConfig = config) -> SimulationEngine:
            return SimulationEngine(config.with_overrides(seed=seed))

        variants[method] = factory
    return _run_variants(
        "ablation-weights",
        "AHP weight-method ablation",
        variants,
        repetitions,
        base_seed,
    )
