"""The experiment harness: one module per paper table/figure.

Every public experiment function returns an
:class:`~repro.analysis.series.ExperimentResult` whose rows are the same
series the paper plots.  The registry maps experiment ids ("fig6a",
"table1", ...) to those functions so the CLI and the benchmark harness
can regenerate any panel by name — see DESIGN.md §4 for the full index.

Repetition counts default to :func:`~repro.experiments.runner.default_repetitions`
(environment variable ``REPRO_REPS``, else 20); the paper uses 100.
"""

from repro.experiments.runner import (
    default_repetitions,
    default_user_counts,
    repeat_metric,
    repeat_metrics,
)
from repro.experiments.comparison import mechanism_user_sweep, MECHANISMS_COMPARED
from repro.experiments.registry import EXPERIMENTS, run_experiment, experiment_ids
from repro.experiments import fig5, fig6, fig7, fig8, fig9, tables, ablations

__all__ = [
    "default_repetitions",
    "default_user_counts",
    "repeat_metric",
    "repeat_metrics",
    "mechanism_user_sweep",
    "MECHANISMS_COMPARED",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_ids",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "tables",
    "ablations",
]
