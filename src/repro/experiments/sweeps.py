"""Generic parameter sweeps over any SimulationConfig field.

The paper sweeps one axis (the number of users); downstream users of the
library usually want to sweep *their* knob — budget, neighbour radius,
level count — against the same metrics.  :func:`config_sweep` does that
for any numeric config field, and :func:`budget_sweep` instantiates the
one question every deployment asks first: **how much budget does a given
completeness level cost?**
"""

from __future__ import annotations

from dataclasses import fields
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.analysis.series import ExperimentResult, Series, SeriesPoint
from repro.experiments.runner import MetricFn, default_repetitions, repeat_metrics
from repro.metrics import coverage, overall_completeness
from repro.simulation.config import SimulationConfig

#: Default metrics for sweeps, as (label, fn) pairs.
DEFAULT_METRICS: Dict[str, MetricFn] = {
    "coverage_pct": lambda result: 100.0 * coverage(result),
    "completeness_pct": lambda result: 100.0 * overall_completeness(result),
}

_CONFIG_FIELDS = {f.name for f in fields(SimulationConfig)}


def _value_journal(
    journal_dir: Optional[Union[str, Path]], label: str, value
) -> Optional[Path]:
    """One checkpoint file per sweep value, or None when journaling is off."""
    if journal_dir is None:
        return None
    return Path(journal_dir) / f"{label}-{value}.jsonl"


def config_sweep(
    field: str,
    values: Sequence[float],
    metrics: Optional[Dict[str, MetricFn]] = None,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
    experiment_id: Optional[str] = None,
    journal_dir: Optional[Union[str, Path]] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Sweep one config field; one series per metric, x = field value.

    Args:
        field: a :class:`SimulationConfig` field name (validated).
        values: the x axis, in any order (sorted into the result).
        journal_dir: optional checkpoint directory (one journal per
            sweep value) making the sweep resumable after interruption.
        workers: simulation processes per sweep value (None = serial);
            aggregates are bit-identical to a serial sweep.

    Raises:
        ValueError: for an unknown field or an empty value list.
    """
    if field not in _CONFIG_FIELDS:
        raise ValueError(
            f"unknown config field {field!r}; valid: {sorted(_CONFIG_FIELDS)}"
        )
    if not values:
        raise ValueError("values must be non-empty")
    metrics = metrics if metrics is not None else dict(DEFAULT_METRICS)
    repetitions = repetitions if repetitions is not None else default_repetitions()
    base_config = base_config if base_config is not None else SimulationConfig()

    per_metric: Dict[str, list] = {name: [] for name in metrics}
    for value in sorted(values):
        config = base_config.with_overrides(**{field: value})
        collected = repeat_metrics(
            config, metrics, repetitions, base_seed,
            journal=_value_journal(journal_dir, f"sweep-{field}", value),
            workers=workers,
        )
        for name in metrics:
            per_metric[name].append(SeriesPoint.from_values(value, collected[name]))

    return ExperimentResult(
        experiment_id=experiment_id if experiment_id else f"sweep-{field}",
        title=f"Sweep over {field}",
        x_label=field,
        y_label=" / ".join(metrics),
        series=[
            Series(label=name, points=tuple(points))
            for name, points in per_metric.items()
        ],
        metadata={
            "repetitions": repetitions,
            "base_seed": base_seed,
            "field": field,
        },
    )


def budget_sweep(
    budgets: Sequence[float] = (400.0, 600.0, 800.0, 1000.0, 1500.0, 2000.0),
    n_users: int = 100,
    repetitions: Optional[int] = None,
    base_seed: int = 0,
    journal_dir: Optional[Union[str, Path]] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Coverage/completeness vs platform budget B at fixed crowd size.

    Budgets below :math:`\\sum \\varphi_i \\cdot \\lambda (N-1)` cannot
    satisfy Eq. 9 at the paper's step/levels, so the default axis starts
    at 400 $ (where :math:`r_0` is exactly 0 would be 800 with step 0.5 —
    smaller budgets shrink the step to keep Eq. 9 feasible).
    """
    metrics = dict(DEFAULT_METRICS)
    repetitions = repetitions if repetitions is not None else default_repetitions()

    per_metric: Dict[str, list] = {name: [] for name in metrics}
    for budget in sorted(budgets):
        # Keep Eq. 9 feasible at small budgets: cap the step so r0 > 0.
        base = SimulationConfig(n_users=n_users)
        max_step = budget / base.total_required_measurements / (base.level_count - 1)
        step = min(base.reward_step, 0.8 * max_step)
        config = base.with_overrides(budget=budget, reward_step=step)
        collected = repeat_metrics(
            config, metrics, repetitions, base_seed,
            journal=_value_journal(journal_dir, "sweep-budget", budget),
            workers=workers,
        )
        for name in metrics:
            per_metric[name].append(SeriesPoint.from_values(budget, collected[name]))

    return ExperimentResult(
        experiment_id="sweep-budget",
        title=f"Coverage/completeness vs platform budget ({n_users} users)",
        x_label="budget ($)",
        y_label="percent",
        series=[
            Series(label=name, points=tuple(points))
            for name, points in per_metric.items()
        ],
        metadata={"repetitions": repetitions, "base_seed": base_seed,
                  "n_users": n_users},
    )
