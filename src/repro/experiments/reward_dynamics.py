"""Price trajectories: what each mechanism *offers* round by round.

Not a paper panel, but the clearest picture of the mechanisms' characters:

- **on-demand** starts mid-ladder, dips as tasks fill (progress pushes
  demand down), then climbs for the stragglers as deadlines close in;
- **fixed** is a flat line by construction;
- **steered** starts at its ceiling and decays monotonically — the
  disengagement dynamic Section VI blames for its late-round silence.

Also sensitive to the extension knobs: under the adaptive mechanism the
trajectory ramps up as unspent budget is recycled.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.series import ExperimentResult
from repro.experiments.comparison import MECHANISMS_COMPARED, mechanism_round_sweep
from repro.metrics.rewards import average_published_reward_per_round
from repro.simulation.config import SimulationConfig


def reward_dynamics(
    horizon: int = 15,
    n_users: int = 100,
    mechanisms: Sequence[str] = MECHANISMS_COMPARED,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Average published reward per round, one series per mechanism."""
    return mechanism_round_sweep(
        experiment_id="reward-dynamics",
        title=f"Average published reward per round ({n_users} users)",
        y_label="average published reward ($)",
        series_metric=lambda result: average_published_reward_per_round(
            result, horizon
        ),
        horizon=horizon,
        n_users=n_users,
        mechanisms=mechanisms,
        repetitions=repetitions,
        base_config=base_config,
        base_seed=base_seed,
    )
