"""Fig. 6: coverage of the three incentive mechanisms.

(a) coverage (%) vs number of users, measured at the end of the run;
(b) coverage (%) vs sensing round for 100 users.

Expected shape: on-demand and steered reach (essentially) 100 %; fixed
stays below 100 % and improves with more users / later rounds but never
closes the gap ("just increasing the sensing rounds does not increase
the popularity of unpopular sensing tasks in the fixed incentive
mechanism").

Both panels accept ``journal_dir`` (see
:mod:`repro.resilience.journal`): a paper-fidelity 100-repetition
regeneration that dies mid-sweep resumes from its checkpoints instead
of starting over — ``repro run fig6a --resume DIR``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.series import ExperimentResult
from repro.experiments.comparison import mechanism_round_sweep, mechanism_user_sweep
from repro.metrics import coverage, coverage_by_round
from repro.simulation.config import SimulationConfig


def fig6a(
    user_counts: Optional[Sequence[int]] = None,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
    journal_dir: Optional[Union[str, Path]] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Coverage (%) vs number of users (Fig. 6(a))."""
    return mechanism_user_sweep(
        experiment_id="fig6a",
        title="Coverage vs number of users",
        y_label="coverage (%)",
        metric=lambda result: 100.0 * coverage(result),
        user_counts=user_counts,
        repetitions=repetitions,
        base_config=base_config,
        base_seed=base_seed,
        journal_dir=journal_dir,
        workers=workers,
    )


def fig6b(
    horizon: int = 15,
    n_users: int = 100,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
    journal_dir: Optional[Union[str, Path]] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Cumulative coverage (%) per round at 100 users (Fig. 6(b))."""
    return mechanism_round_sweep(
        experiment_id="fig6b",
        title=f"Coverage vs sensing round ({n_users} users)",
        y_label="coverage (%)",
        series_metric=lambda result: [
            100.0 * value for value in coverage_by_round(result, horizon)
        ],
        horizon=horizon,
        n_users=n_users,
        repetitions=repetitions,
        base_config=base_config,
        base_seed=base_seed,
        journal_dir=journal_dir,
        workers=workers,
    )
