"""Fig. 8: number of measurements under the three incentive mechanisms.

(a) average accepted measurements per task vs number of users (the
required number is 20, so the on-demand curve should approach 20);
(b) total *new* measurements per round for 100 users.

Expected (b) shape, straight from Section VI-D: the steered mechanism
spikes highest in round 1 (its Eq. 13 rewards are maximal on untouched
tasks), the fixed mechanism is relatively stronger in rounds 2–3 (its
rewards do not decay), and "starting from the 4th round there is no more
new measurement for the fixed and the steered incentive mechanisms"
while the on-demand mechanism keeps producing measurements late.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.series import ExperimentResult
from repro.experiments.comparison import mechanism_round_sweep, mechanism_user_sweep
from repro.metrics import average_measurements, measurements_per_round
from repro.simulation.config import SimulationConfig


def fig8a(
    user_counts: Optional[Sequence[int]] = None,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Average measurements per task vs number of users (Fig. 8(a))."""
    return mechanism_user_sweep(
        experiment_id="fig8a",
        title="Average measurements per task vs number of users",
        y_label="average measurements",
        metric=average_measurements,
        user_counts=user_counts,
        repetitions=repetitions,
        base_config=base_config,
        base_seed=base_seed,
        workers=workers,
    )


def fig8b(
    horizon: int = 15,
    n_users: int = 100,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Total new measurements per round at 100 users (Fig. 8(b))."""
    return mechanism_round_sweep(
        experiment_id="fig8b",
        title=f"New measurements per round ({n_users} users)",
        y_label="measurements",
        series_metric=lambda result: measurements_per_round(result, horizon),
        horizon=horizon,
        n_users=n_users,
        repetitions=repetitions,
        base_config=base_config,
        base_seed=base_seed,
        workers=workers,
    )
