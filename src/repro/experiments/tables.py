"""Tables I–III of the paper, regenerated from the library.

These are not simulations — they are the worked AHP example (Tables I
and II plus the weight vector the text derives from them) and the
demand-level bucketing (Table III).  Regenerating them from the same
code paths the mechanism uses pins the library to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.core.ahp import example_comparison_matrix
from repro.core.levels import DemandLevels

#: The weight vector the paper derives from Table II (Section IV-B text).
PAPER_WEIGHTS = (0.648, 0.230, 0.122)

CRITERIA = ("deadline", "progress", "neighbours")


@dataclass
class TableResult:
    """A rendered paper table: header, rows, provenance notes."""

    table_id: str
    title: str
    header: List[str]
    rows: List[List[Any]]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "table_id": self.table_id,
            "title": self.title,
            "header": self.header,
            "rows": self.rows,
            "metadata": self.metadata,
        }


def table1() -> TableResult:
    """Table I: the example pairwise comparison matrix A."""
    matrix = example_comparison_matrix().values
    rows = [
        [CRITERIA[i]] + [round(float(v), 3) for v in matrix[i]]
        for i in range(3)
    ]
    return TableResult(
        table_id="table1",
        title="Example pairwise comparison matrix A",
        header=["criterion", *CRITERIA],
        rows=rows,
        metadata={"consistency_ratio": example_comparison_matrix().consistency_ratio()},
    )


def table2() -> TableResult:
    """Table II: the column-normalised matrix A-bar, plus the weights.

    The paper's numbers: rows (0.652, 0.667, 0.625), (0.217, 0.222,
    0.250), (0.131, 0.111, 0.125) and W = (0.648, 0.230, 0.122).
    """
    matrix = example_comparison_matrix()
    normalized = matrix.normalized()
    weights = matrix.weights("column-normalization")
    rows = [
        [CRITERIA[i]]
        + [round(float(v), 3) for v in normalized[i]]
        + [round(float(weights[i]), 3)]
        for i in range(3)
    ]
    return TableResult(
        table_id="table2",
        title="Normalised pairwise comparison matrix and weights",
        header=["criterion", *CRITERIA, "weight"],
        rows=rows,
        metadata={
            "paper_weights": list(PAPER_WEIGHTS),
            "max_weight_error": float(
                np.max(np.abs(weights - np.asarray(PAPER_WEIGHTS)))
            ),
        },
    )


def table3(level_count: int = 5) -> TableResult:
    """Table III: the demand-level bucketing of normalised demand."""
    levels = DemandLevels(level_count)
    rows = [
        [
            f"[{low:.1f}, {high:.1f}]" if level == 1 else f"({low:.1f}, {high:.1f}]",
            level,
        ]
        for (low, high), level in levels.table()
    ]
    return TableResult(
        table_id="table3",
        title=f"Demand levels (N = {level_count})",
        header=["normalised demand", "level"],
        rows=rows,
    )


def all_tables() -> List[TableResult]:
    """Tables I–III in order."""
    return [table1(), table2(), table3()]
