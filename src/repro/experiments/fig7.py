"""Fig. 7: overall completeness of the three incentive mechanisms.

(a) overall completeness (%) vs number of users at the end of the run;
(b) overall completeness (%) as of rounds 5..15 for 100 users (deadlines
are drawn from [5, 15], so the axis starts where the first deadlines
land).

Expected shape: the on-demand mechanism dominates both baselines and
approaches 100 %; the baselines plateau well below it because their
rewards stop attracting users to unfinished far-away tasks.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.series import ExperimentResult
from repro.experiments.comparison import mechanism_round_sweep, mechanism_user_sweep
from repro.metrics import completeness_by_round, overall_completeness
from repro.simulation.config import SimulationConfig


def fig7a(
    user_counts: Optional[Sequence[int]] = None,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Overall completeness (%) vs number of users (Fig. 7(a))."""
    return mechanism_user_sweep(
        experiment_id="fig7a",
        title="Overall completeness vs number of users",
        y_label="overall completeness (%)",
        metric=lambda result: 100.0 * overall_completeness(result),
        user_counts=user_counts,
        repetitions=repetitions,
        base_config=base_config,
        base_seed=base_seed,
        workers=workers,
    )


def fig7b(
    horizon: int = 15,
    first_round: int = 5,
    n_users: int = 100,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Overall completeness (%) per round, rounds 5..15 (Fig. 7(b))."""
    return mechanism_round_sweep(
        experiment_id="fig7b",
        title=f"Overall completeness vs sensing round ({n_users} users)",
        y_label="overall completeness (%)",
        series_metric=lambda result: [
            100.0 * value for value in completeness_by_round(result, horizon)
        ],
        horizon=horizon,
        first_round=first_round,
        n_users=n_users,
        repetitions=repetitions,
        base_config=base_config,
        base_seed=base_seed,
        workers=workers,
    )
