"""Platform welfare by mechanism — the Section III-B objective directly.

Fig. 9(b) approximates welfare by the price per measurement; this panel
computes the welfare itself (value of on-time data minus payments, see
:mod:`repro.metrics.welfare`) across the user sweep.  Expected shape:
on-demand on top — it both buys the most on-time measurements *and* pays
the least for them — with steered penalised hardest because it buys
deadline-blind.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.series import ExperimentResult
from repro.experiments.comparison import mechanism_user_sweep
from repro.metrics.welfare import platform_welfare
from repro.simulation.config import SimulationConfig


def welfare_by_mechanism(
    user_counts: Optional[Sequence[int]] = None,
    value_per_measurement: float = 2.5,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Platform welfare ($) vs number of users, three mechanisms."""
    result = mechanism_user_sweep(
        experiment_id="welfare",
        title="Platform welfare vs number of users",
        y_label="platform welfare ($)",
        metric=lambda r: platform_welfare(r, value_per_measurement),
        user_counts=user_counts,
        repetitions=repetitions,
        base_config=base_config,
        base_seed=base_seed,
    )
    result.metadata["value_per_measurement"] = value_per_measurement
    return result
