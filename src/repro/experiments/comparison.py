"""The three-mechanism comparison harness behind Figs. 6–9.

Every "(a)" panel of Figs. 6–9 is the same experiment skeleton — sweep
the number of users over 40..140, run all three mechanisms on paired
worlds, plot one scalar metric — so it lives here once and the figure
modules supply only the metric and the labels.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.analysis.series import ExperimentResult, Series, SeriesPoint
from repro.experiments.runner import (
    MetricFn,
    default_repetitions,
    default_user_counts,
    repeat_metric,
    repeat_series_metric,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.events import SimulationResult

#: The mechanisms Section VI compares, in the paper's legend order.
MECHANISMS_COMPARED = ("on-demand", "fixed", "steered")


def _cell_journal(
    journal_dir: Optional[Union[str, Path]], *parts
) -> Optional[Path]:
    """One journal file per sweep cell, or None when journaling is off."""
    if journal_dir is None:
        return None
    name = "-".join(str(part) for part in parts) + ".jsonl"
    return Path(journal_dir) / name


def mechanism_user_sweep(
    experiment_id: str,
    title: str,
    y_label: str,
    metric: MetricFn,
    user_counts: Optional[Sequence[int]] = None,
    mechanisms: Sequence[str] = MECHANISMS_COMPARED,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
    journal_dir: Optional[Union[str, Path]] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Sweep #users x mechanisms, aggregating one scalar metric.

    Repetition i of every (user count, mechanism) cell derives its seed
    from (base_seed, i) alone, so all mechanisms see identical worlds —
    the comparison is paired.

    With ``journal_dir`` set, every (mechanism, user count) cell
    checkpoints its repetitions to a journal file in that directory;
    re-running after an interruption (same arguments, same directory)
    resumes at the first missing repetition.

    ``workers`` fans each cell's repetitions across that many simulation
    processes (see :func:`~repro.experiments.runner.repeat_metrics`);
    aggregates are bit-identical to a serial run.
    """
    user_counts = list(user_counts if user_counts is not None else default_user_counts())
    repetitions = repetitions if repetitions is not None else default_repetitions()
    base_config = base_config if base_config is not None else SimulationConfig()

    series = []
    for mechanism in mechanisms:
        points = []
        for n_users in user_counts:
            config = base_config.with_overrides(n_users=n_users, mechanism=mechanism)
            journal = _cell_journal(
                journal_dir, experiment_id, mechanism, f"u{n_users}"
            )
            values = repeat_metric(
                config, metric, repetitions, base_seed,
                journal=journal, workers=workers,
            )
            points.append(SeriesPoint.from_values(n_users, values))
        series.append(Series(label=mechanism, points=tuple(points)))

    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="users",
        y_label=y_label,
        series=series,
        metadata={
            "repetitions": repetitions,
            "base_seed": base_seed,
            "mechanisms": list(mechanisms),
            "selector": base_config.selector,
        },
    )


def mechanism_round_sweep(
    experiment_id: str,
    title: str,
    y_label: str,
    series_metric: Callable[[SimulationResult], Sequence[float]],
    horizon: int,
    first_round: int = 1,
    n_users: int = 100,
    mechanisms: Sequence[str] = MECHANISMS_COMPARED,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
    journal_dir: Optional[Union[str, Path]] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Fixed user count, rounds on the x axis (the "(b)" panels).

    ``series_metric`` must return one value per round 1..horizon; the
    result keeps rounds ``first_round``..horizon (Fig. 7(b) starts its
    axis at round 5).  ``journal_dir`` checkpoints per-mechanism
    repetitions and ``workers`` parallelises them, exactly as in
    :func:`mechanism_user_sweep`.
    """
    if not 1 <= first_round <= horizon:
        raise ValueError(
            f"need 1 <= first_round <= horizon, got {first_round}, {horizon}"
        )
    repetitions = repetitions if repetitions is not None else default_repetitions()
    base_config = base_config if base_config is not None else SimulationConfig()

    series = []
    for mechanism in mechanisms:
        config = base_config.with_overrides(n_users=n_users, mechanism=mechanism)
        journal = _cell_journal(journal_dir, experiment_id, mechanism)
        per_round = repeat_series_metric(
            config, series_metric, repetitions, base_seed,
            journal=journal, workers=workers,
        )
        points = tuple(
            SeriesPoint.from_values(round_no, per_round[round_no - 1])
            for round_no in range(first_round, horizon + 1)
        )
        series.append(Series(label=mechanism, points=points))

    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="round",
        y_label=y_label,
        series=series,
        metadata={
            "repetitions": repetitions,
            "base_seed": base_seed,
            "n_users": n_users,
            "mechanisms": list(mechanisms),
            "selector": base_config.selector,
        },
    )
