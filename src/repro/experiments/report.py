"""One-shot reproduction report: every panel, every claim, one document.

``repro report --reps 10 --out report.md`` regenerates all registered
paper panels, checks each panel's shape claims (the same predicates the
integration tests assert), and renders a single markdown document with
the series tables and a pass/fail claim matrix — the artifact you attach
to "we reproduced this paper".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.series import ExperimentResult
from repro.analysis.shape import dominates, final_value
from repro.experiments.registry import run_experiment
from repro.io.tables import render_markdown

#: The panels included in the default report, in paper order.
REPORT_PANELS = (
    "fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b",
    "fig8a", "fig8b", "fig9a", "fig9b",
)


@dataclass(frozen=True)
class Claim:
    """One checkable shape claim about one panel."""

    panel: str
    description: str
    check: Callable[[ExperimentResult], bool]


def _fig8b_late(result: ExperimentResult, label: str) -> float:
    series = result.series_by_label(label)
    return sum(p.mean for p in series.points if p.x >= 4)


#: The paper's Section VI claims as executable predicates.
CLAIMS: List[Claim] = [
    Claim("fig5a", "DP profit dominates greedy at every user count",
          lambda r: dominates(r.series_by_label("dp"),
                              r.series_by_label("greedy"), tolerance=1e-9)),
    Claim("fig5b", "every per-user DP-minus-greedy difference is >= 0",
          lambda r: all(p.mean >= -1e-9
                        for p in r.series_by_label("minimum").points)),
    Claim("fig6a", "on-demand coverage >= fixed coverage everywhere",
          lambda r: dominates(r.series_by_label("on-demand"),
                              r.series_by_label("fixed"))),
    Claim("fig6a", "fixed never averages 100% coverage across the sweep",
          lambda r: sum(p.mean for p in r.series_by_label("fixed").points)
          / len(r.series_by_label("fixed").points) < 99.9),
    Claim("fig6b", "on-demand reaches ~100% coverage by the last round",
          lambda r: final_value(r.series_by_label("on-demand")) >= 99.0),
    Claim("fig7a", "on-demand completeness dominates both baselines",
          lambda r: dominates(r.series_by_label("on-demand"),
                              r.series_by_label("fixed"))
          and dominates(r.series_by_label("on-demand"),
                        r.series_by_label("steered"))),
    Claim("fig7b", "on-demand keeps improving after round 5; baselines freeze",
          lambda r: final_value(r.series_by_label("on-demand"))
          > r.series_by_label("on-demand").points[0].mean + 1.0),
    Claim("fig8a", "on-demand collects the most measurements per task",
          lambda r: dominates(r.series_by_label("on-demand"),
                              r.series_by_label("fixed"))
          and dominates(r.series_by_label("on-demand"),
                        r.series_by_label("steered"))),
    Claim("fig8b", "steered has the largest round-1 measurement count",
          lambda r: r.series_by_label("steered").point_at(1).mean
          >= max(r.series_by_label("on-demand").point_at(1).mean,
                 r.series_by_label("fixed").point_at(1).mean)),
    Claim("fig8b", "only on-demand keeps collecting from round 4 on",
          lambda r: _fig8b_late(r, "on-demand") > _fig8b_late(r, "fixed")
          and _fig8b_late(r, "on-demand") > _fig8b_late(r, "steered")),
    Claim("fig9a", "on-demand has the lowest variance of measurements",
          lambda r: dominates(r.series_by_label("fixed"),
                              r.series_by_label("on-demand"))
          and dominates(r.series_by_label("steered"),
                        r.series_by_label("on-demand"))),
    Claim("fig9b", "on-demand pays the least per measurement",
          lambda r: dominates(r.series_by_label("fixed"),
                              r.series_by_label("on-demand"))
          and dominates(r.series_by_label("steered"),
                        r.series_by_label("on-demand"))),
    Claim("fig9b", "on-demand price decreases from 40 to 140 users",
          lambda r: r.series_by_label("on-demand").means[-1]
          < r.series_by_label("on-demand").means[0]),
]


def evaluate_claims(
    results: Dict[str, ExperimentResult]
) -> List[Dict[str, object]]:
    """Check every claim whose panel was run; returns row dicts."""
    rows: List[Dict[str, object]] = []
    for claim in CLAIMS:
        result = results.get(claim.panel)
        if result is None:
            continue
        try:
            passed = bool(claim.check(result))
        except KeyError:
            passed = False  # a series the claim needs is absent
        rows.append({
            "panel": claim.panel,
            "claim": claim.description,
            "passed": passed,
        })
    return rows


def claim_stability(
    panel: str,
    seeds: Sequence[int] = (0, 1, 2),
    repetitions: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Re-run one panel under several base seeds; per claim, count passes.

    A claim that holds at every seed is a reproduction; one that flips
    with the seed is an artifact.  Returns one row per claim with the
    pass count and the seed list, ready for
    :func:`repro.io.tables.render_table`.

    Raises:
        ValueError: if no registered claim targets ``panel`` or seeds is
            empty.
    """
    if not seeds:
        raise ValueError("seeds must be non-empty")
    relevant = [claim for claim in CLAIMS if claim.panel == panel]
    if not relevant:
        raise ValueError(f"no claims registered for panel {panel!r}")
    passes: Dict[str, int] = {claim.description: 0 for claim in relevant}
    for seed in seeds:
        kwargs = {"base_seed": seed}
        if repetitions is not None:
            kwargs["repetitions"] = repetitions
        result = run_experiment(panel, **kwargs)
        for claim in relevant:
            try:
                if claim.check(result):
                    passes[claim.description] += 1
            except KeyError:
                pass
    return [
        {
            "panel": panel,
            "claim": description,
            "passes": count,
            "seeds": len(seeds),
            "stable": count == len(seeds),
        }
        for description, count in passes.items()
    ]


def build_report(
    repetitions: Optional[int] = None,
    base_seed: int = 0,
    panels: Optional[Sequence[str]] = None,
) -> str:
    """Run ``panels`` (default: all paper panels) and render the report."""
    if panels is None:
        panels = REPORT_PANELS
    results: Dict[str, ExperimentResult] = {}
    for panel in panels:
        kwargs = {"base_seed": base_seed}
        if repetitions is not None:
            kwargs["repetitions"] = repetitions
        results[panel] = run_experiment(panel, **kwargs)

    lines = [
        "# Reproduction report — Pay On-demand (ICDCS 2018)",
        "",
        f"Panels: {', '.join(panels)}.  "
        f"Repetitions: {repetitions if repetitions is not None else 'default'}; "
        f"base seed: {base_seed}.",
        "",
        "## Claim matrix",
        "",
    ]
    claim_rows = evaluate_claims(results)
    lines.append(render_markdown(
        ["panel", "claim", "verdict"],
        [[row["panel"], row["claim"], "PASS" if row["passed"] else "FAIL"]
         for row in claim_rows],
    ))
    failed = sum(1 for row in claim_rows if not row["passed"])
    lines.append("")
    lines.append(
        f"**{len(claim_rows) - failed} of {len(claim_rows)} claims reproduced.**"
    )

    for panel in panels:
        result = results[panel]
        lines.extend([
            "",
            f"## {result.experiment_id}: {result.title}",
            "",
            f"*y = {result.y_label}; x = {result.x_label}*",
            "",
            render_markdown(result.header(), result.rows()),
        ])
    lines.append("")
    return "\n".join(lines)
