"""Experiment registry: every paper panel and ablation, by id.

The ids match DESIGN.md §4's per-experiment index; the CLI's
``repro run <id>`` and the benchmark harness both resolve through here.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List

from repro.experiments import (
    ablations,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    reward_dynamics,
    sat_comparison,
    sweeps,
    welfare,
)

#: id -> zero-argument-callable returning an ExperimentResult (all
#: experiment functions have keyword defaults, so bare calls run the
#: paper configuration).
EXPERIMENTS: Dict[str, Callable] = {
    "fig5a": fig5.fig5a,
    "fig5b": fig5.fig5b,
    "fig6a": fig6.fig6a,
    "fig6b": fig6.fig6b,
    "fig7a": fig7.fig7a,
    "fig7b": fig7.fig7b,
    "fig8a": fig8.fig8a,
    "fig8b": fig8.fig8b,
    "fig9a": fig9.fig9a,
    "fig9b": fig9.fig9b,
    "sat-vs-wst": sat_comparison.sat_vs_wst,
    "ablation-levels": ablations.level_count_ablation,
    "ablation-factors": ablations.factor_ablation,
    "ablation-mobility": ablations.mobility_ablation,
    "ablation-weights": ablations.weight_method_ablation,
    "ablation-heterogeneity": ablations.heterogeneity_ablation,
    "ablation-adaptive": ablations.adaptive_budget_ablation,
    "ablation-arrivals": ablations.arrivals_ablation,
    "sweep-budget": sweeps.budget_sweep,
    "reward-dynamics": reward_dynamics.reward_dynamics,
    "welfare": welfare.welfare_by_mechanism,
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, in registry order."""
    return list(EXPERIMENTS)


def supports_kwarg(experiment_id: str, kwarg: str) -> bool:
    """Whether an experiment's runner accepts a keyword argument.

    Used by the CLI to decide whether ``--resume`` (→ ``journal_dir``)
    can be forwarded to the chosen experiment, and useful to any driver
    passing optional capabilities through the registry.

    Raises:
        ValueError: for an unknown experiment id.
    """
    if experiment_id not in EXPERIMENTS:
        valid = ", ".join(experiment_ids())
        raise ValueError(
            f"unknown experiment {experiment_id!r}; valid: {valid}"
        )
    parameters = inspect.signature(EXPERIMENTS[experiment_id]).parameters
    return kwarg in parameters


def resumable_experiment_ids() -> List[str]:
    """Experiments that accept ``journal_dir`` (i.e. support ``--resume``)."""
    return [
        experiment_id
        for experiment_id in EXPERIMENTS
        if supports_kwarg(experiment_id, "journal_dir")
    ]


def run_experiment(experiment_id: str, **kwargs):
    """Run one experiment by id, forwarding keyword overrides.

    Raises:
        ValueError: for an unknown id (message lists the valid ones).
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        valid = ", ".join(experiment_ids())
        raise ValueError(
            f"unknown experiment {experiment_id!r}; valid: {valid}"
        ) from None
    return runner(**kwargs)
