"""Fig. 9: participation balance and platform welfare.

(a) variance of per-task measurement counts vs number of users — the
on-demand mechanism should sit lowest (best participation balance, given
it also has the highest average in Fig. 8(a));
(b) average reward per measurement vs number of users — the on-demand
mechanism should pay the least per measurement and decrease as users
grow ("the demand is stronger for less number of mobile users").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.series import ExperimentResult
from repro.experiments.comparison import mechanism_user_sweep
from repro.metrics import average_reward_per_measurement, variance_of_measurements
from repro.simulation.config import SimulationConfig


def fig9a(
    user_counts: Optional[Sequence[int]] = None,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Variance of measurements vs number of users (Fig. 9(a))."""
    return mechanism_user_sweep(
        experiment_id="fig9a",
        title="Variance of measurements vs number of users",
        y_label="variance of measurements",
        metric=variance_of_measurements,
        user_counts=user_counts,
        repetitions=repetitions,
        base_config=base_config,
        base_seed=base_seed,
        workers=workers,
    )


def fig9b(
    user_counts: Optional[Sequence[int]] = None,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Average reward per measurement vs number of users (Fig. 9(b))."""
    return mechanism_user_sweep(
        experiment_id="fig9b",
        title="Average reward per measurement vs number of users",
        y_label="average reward per measurement ($)",
        metric=average_reward_per_measurement,
        user_counts=user_counts,
        repetitions=repetitions,
        base_config=base_config,
        base_seed=base_seed,
        workers=workers,
    )
