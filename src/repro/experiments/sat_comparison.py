"""SAT vs WST: how close does demand-based WST get to central control?

The paper motivates WST by practicality and names its cost — no control
over allocation.  This experiment quantifies that cost: the same worlds,
the same on-demand pricing, run (a) in WST mode with the exact DP
selector, (b) in WST mode with fixed pricing (the weak baseline), and
(c) in SAT mode under the global greedy coordinator.

The SAT coordinator never wastes a measurement (no redundancy) and aims
spare capacity at deadline-critical tasks.  The measured result is the
interesting part: demand-based WST matches or *beats* the central greedy
on completeness — central control per se is not what closes the gap the
paper identifies; pricing tasks by demand does — while fixed-reward WST
trails both by a wide margin.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.allocation.greedy_server import GreedyServerCoordinator
from repro.analysis.series import ExperimentResult, Series, SeriesPoint
from repro.experiments.runner import default_repetitions, default_user_counts
from repro.metrics import overall_completeness, coverage
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import child_seed

#: The compared modes, in presentation order.
MODES = ("sat-greedy", "wst-on-demand", "wst-fixed")


def _run(mode: str, config: SimulationConfig, seed: int):
    run_config = config.with_overrides(seed=seed)
    if mode == "sat-greedy":
        engine = SimulationEngine(
            run_config.with_overrides(mechanism="on-demand"),
            coordinator=GreedyServerCoordinator(),
        )
    elif mode == "wst-on-demand":
        engine = SimulationEngine(run_config.with_overrides(mechanism="on-demand"))
    elif mode == "wst-fixed":
        engine = SimulationEngine(run_config.with_overrides(mechanism="fixed"))
    else:
        raise ValueError(f"unknown mode {mode!r}; valid: {MODES}")
    return engine.run()


def sat_vs_wst(
    user_counts: Optional[Sequence[int]] = None,
    repetitions: Optional[int] = None,
    base_config: Optional[SimulationConfig] = None,
    base_seed: int = 0,
    metric: str = "completeness",
) -> ExperimentResult:
    """Sweep #users across the three modes for one headline metric.

    Args:
        metric: ``"completeness"`` (default) or ``"coverage"``.
    """
    metrics = {
        "completeness": lambda result: 100.0 * overall_completeness(result),
        "coverage": lambda result: 100.0 * coverage(result),
    }
    if metric not in metrics:
        raise ValueError(f"unknown metric {metric!r}; valid: {sorted(metrics)}")
    evaluate = metrics[metric]

    user_counts = list(user_counts if user_counts is not None else default_user_counts())
    repetitions = repetitions if repetitions is not None else default_repetitions()
    base_config = base_config if base_config is not None else SimulationConfig()

    series = []
    for mode in MODES:
        points = []
        for n_users in user_counts:
            config = base_config.with_overrides(n_users=n_users)
            values = [
                evaluate(_run(mode, config, child_seed(base_seed, rep)))
                for rep in range(repetitions)
            ]
            points.append(SeriesPoint.from_values(n_users, values))
        series.append(Series(label=mode, points=tuple(points)))

    return ExperimentResult(
        experiment_id=f"sat-vs-wst-{metric}",
        title=f"SAT (central assignment) vs WST (incentive-driven): {metric}",
        x_label="users",
        y_label=f"{metric} (%)",
        series=series,
        metadata={
            "repetitions": repetitions,
            "base_seed": base_seed,
            "modes": list(MODES),
        },
    )
