"""Platform-welfare metrics: Fig. 9(b).

"The platform will have a larger welfare if it pays smaller reward per
measurement."  The average reward per measurement is the total payout
divided by the number of accepted measurements.
"""

from __future__ import annotations

from typing import List

from repro.simulation.events import SimulationResult


def total_paid(result: SimulationResult) -> float:
    """Total rewards the platform paid over the run (bounded by Eq. 8)."""
    return result.total_paid


def average_reward_per_measurement(result: SimulationResult) -> float:
    """Mean price paid per accepted measurement (Fig. 9(b) y-axis).

    Defined as 0 for a run with no measurements at all (nothing was
    bought, nothing was paid) — callers comparing mechanisms treat that
    as "no participation", which the other metrics expose too.
    """
    count = result.total_measurements
    if count == 0:
        return 0.0
    return result.total_paid / count


def average_published_reward_per_round(
    result: SimulationResult, horizon: int
) -> List[float]:
    """Mean *published* (offered) reward per round, for rounds 1..horizon.

    This is the price dynamics view: what the platform offered, not what
    it paid.  Rounds with no published task — and rounds past the played
    history — contribute 0, so mechanism trajectories stay comparable
    across early-stopping runs.

    Raises:
        ValueError: for a non-positive horizon.
    """
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    series: List[float] = []
    for round_no in range(1, horizon + 1):
        if round_no <= result.rounds_played:
            prices = result.rounds[round_no - 1].published_rewards
            series.append(sum(prices.values()) / len(prices) if prices else 0.0)
        else:
            series.append(0.0)
    return series
