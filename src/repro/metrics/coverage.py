"""Coverage: the spatial-balance metric of Fig. 6.

"Coverage measures how good the algorithm balances the popularity among
sensing tasks ... The demand-based incentive mechanism ... achieve[s]
100% coverage which means that each sensing task is at least selected
once by users."

A task counts as covered once it has received at least one accepted
measurement.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.simulation.events import SimulationResult


def covered_task_ids(
    result: SimulationResult, up_to_round: Optional[int] = None
) -> Set[int]:
    """Ids of tasks with >= 1 accepted measurement by ``up_to_round`` (inclusive).

    Args:
        up_to_round: 1-based cutoff; None means the whole run.
    """
    if result.streamed:
        # Streamed runs drop round records; the tasks' own measurement
        # ledgers (round -> count) carry the same information.
        return {
            task.task_id
            for task in result.world.tasks
            if any(
                count > 0 and (up_to_round is None or round_no <= up_to_round)
                for round_no, count in task.measurements_by_round.items()
            )
        }
    covered: Set[int] = set()
    for record in result.rounds:
        if up_to_round is not None and record.round_no > up_to_round:
            break
        for event in record.measurements:
            covered.add(event.task_id)
    return covered


def coverage(result: SimulationResult, up_to_round: Optional[int] = None) -> float:
    """Fraction of tasks covered, in [0, 1] (multiply by 100 for the paper's %)."""
    total = len(result.world.tasks)
    if total == 0:
        return 1.0
    return len(covered_task_ids(result, up_to_round)) / total


def coverage_by_round(result: SimulationResult, horizon: int) -> List[float]:
    """Cumulative coverage after each of rounds 1..horizon (Fig. 6(b) series).

    Rounds past the actual history (early stop: every task completed or
    expired) repeat the final value — coverage is cumulative, so it can
    no longer change.

    Raises:
        ValueError: for a non-positive horizon.
    """
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    total = len(result.world.tasks)
    if total == 0:
        return [1.0] * horizon
    covered: Set[int] = set()
    series: List[float] = []
    for round_no in range(1, horizon + 1):
        if round_no <= result.rounds_played:
            for event in result.rounds[round_no - 1].measurements:
                covered.add(event.task_id)
        series.append(len(covered) / total)
    return series
