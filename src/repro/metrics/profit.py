"""User-profit metrics: Fig. 5.

Fig. 5(a) plots the *average profit per user* at sensing round 2 — "the
total profits of all users divided by the total number of users" —
for the DP and greedy selectors; Fig. 5(b) boxplots the per-experiment
difference between the two.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.simulation.events import SimulationResult


def user_profits(
    result: SimulationResult, round_no: Optional[int] = None
) -> List[float]:
    """Per-user profit for one round (1-based) or the whole run (None)."""
    return result.user_profits(round_no)


def average_profit_per_user(
    result: SimulationResult, round_no: Optional[int] = None
) -> float:
    """Total profit divided by the number of users (Fig. 5(a) y-axis).

    If ``round_no`` exceeds the rounds actually played (the run ended
    early), the round contributed no profit, so the average is 0.
    """
    if round_no is not None and round_no > result.rounds_played:
        return 0.0
    profits = user_profits(result, round_no)
    if not profits:
        return 0.0
    return float(np.mean(profits))


def profit_difference(
    dp_result: SimulationResult,
    greedy_result: SimulationResult,
    round_no: Optional[int] = None,
) -> float:
    """Average-profit gap (DP minus greedy) between two paired runs.

    The Fig. 5(b) experiment pairs runs on the *same* world seed so the
    difference isolates the selector; callers are responsible for that
    pairing.
    """
    return average_profit_per_user(dp_result, round_no) - average_profit_per_user(
        greedy_result, round_no
    )
