"""Platform welfare: the Section III-B objective, made explicit.

The paper states the platform wants each task complete before its
deadline *and* "the welfare of the platform should be as large as
possible", then evaluates welfare only through its proxy, the average
reward per measurement (Fig. 9(b)).  This module computes the welfare
itself under the standard linear value model:

.. math::
    W = v \\cdot M_{on\\text{-}time} - \\sum \\text{payments}

where :math:`M_{on\\text{-}time}` counts measurements received by their
task's deadline and v is the platform's value per on-time measurement.
Late measurements earn nothing but were still paid for — exactly the
asymmetry that makes deadline-blind mechanisms (steered) lose welfare
even when they buy plenty of data.
"""

from __future__ import annotations

from repro.simulation.events import SimulationResult


def on_time_measurements(result: SimulationResult) -> int:
    """Measurements received by their task's deadline, over the whole run."""
    return sum(task.received_by_deadline() for task in result.world.tasks)


def platform_welfare(
    result: SimulationResult, value_per_measurement: float = 2.5
) -> float:
    """Linear platform welfare: v x on-time measurements - total payments.

    Args:
        value_per_measurement: the platform's value v for one on-time
            measurement.  The default equals the paper's maximum
            per-measurement reward (2.5 $ at the Section VI constants) —
            the largest price the platform was *designed* to be willing
            to pay, so welfare is non-negative whenever every purchase
            was on time.

    Raises:
        ValueError: for a negative value rate.
    """
    if value_per_measurement < 0:
        raise ValueError(
            f"value_per_measurement must be non-negative, got {value_per_measurement}"
        )
    return value_per_measurement * on_time_measurements(result) - result.total_paid


def welfare_margin(result: SimulationResult, value_per_measurement: float = 2.5) -> float:
    """Welfare per dollar spent (0 spend ⇒ 0 margin): efficiency view."""
    spent = result.total_paid
    if spent == 0.0:
        return 0.0
    return platform_welfare(result, value_per_measurement) / spent
