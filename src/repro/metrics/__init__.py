"""The Section VI evaluation metrics, as pure functions of a result.

Each module implements one family of metrics from the paper's
evaluation, computed from a finished
:class:`~repro.simulation.events.SimulationResult`:

- :mod:`~repro.metrics.coverage` — Fig. 6: the fraction of tasks selected
  at least once ("how good the algorithm balances the popularity").
- :mod:`~repro.metrics.completeness` — Fig. 7: how complete tasks are
  *by their deadlines*.
- :mod:`~repro.metrics.measurements` — Fig. 8 and Fig. 9(a): measurement
  counts per task/round and their variance.
- :mod:`~repro.metrics.rewards` — Fig. 9(b): the platform's average
  reward per measurement (its welfare proxy).
- :mod:`~repro.metrics.profit` — Fig. 5: per-user profits.
- :class:`~repro.metrics.summary.MetricsSummary` — everything at once,
  for result files and the CLI.
"""

from repro.metrics.coverage import coverage, coverage_by_round
from repro.metrics.completeness import (
    overall_completeness,
    completed_fraction,
    completeness_at_round,
    completeness_by_round,
    per_task_completeness,
)
from repro.metrics.measurements import (
    measurements_per_task,
    average_measurements,
    variance_of_measurements,
    measurements_per_round,
)
from repro.metrics.rewards import (
    average_reward_per_measurement,
    average_published_reward_per_round,
    total_paid,
)
from repro.metrics.welfare import (
    on_time_measurements,
    platform_welfare,
    welfare_margin,
)
from repro.metrics.profit import (
    average_profit_per_user,
    user_profits,
    profit_difference,
)
from repro.metrics.summary import MetricsSummary

__all__ = [
    "coverage",
    "coverage_by_round",
    "overall_completeness",
    "completed_fraction",
    "completeness_at_round",
    "completeness_by_round",
    "per_task_completeness",
    "measurements_per_task",
    "average_measurements",
    "variance_of_measurements",
    "measurements_per_round",
    "average_reward_per_measurement",
    "average_published_reward_per_round",
    "total_paid",
    "on_time_measurements",
    "platform_welfare",
    "welfare_margin",
    "average_profit_per_user",
    "user_profits",
    "profit_difference",
    "MetricsSummary",
]
