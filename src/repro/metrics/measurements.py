"""Measurement-count metrics: Fig. 8 and Fig. 9(a).

- Fig. 8(a): average accepted measurements per task at the end of the run.
- Fig. 8(b): total *new* measurements per round.
- Fig. 9(a): the variance of per-task measurement counts — "the balance
  of users' participation among sensing tasks"; smaller is more balanced.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.simulation.events import SimulationResult


def measurements_per_task(result: SimulationResult) -> Dict[int, int]:
    """Accepted measurements per task id over the whole run."""
    return result.measurements_by_task()


def average_measurements(result: SimulationResult) -> float:
    """Mean accepted measurements per task (Fig. 8(a) y-axis)."""
    counts = measurements_per_task(result)
    if not counts:
        return 0.0
    return float(np.mean(list(counts.values())))


def variance_of_measurements(result: SimulationResult) -> float:
    """Population variance of per-task measurement counts (Fig. 9(a) y-axis)."""
    counts = measurements_per_task(result)
    if not counts:
        return 0.0
    return float(np.var(list(counts.values())))


def measurements_per_round(result: SimulationResult, horizon: int) -> List[int]:
    """New accepted measurements in each of rounds 1..horizon (Fig. 8(b) series).

    Rounds beyond the played history contribute 0 — the run ended, no
    more data arrives.

    Raises:
        ValueError: for a non-positive horizon.
    """
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    series: List[int] = []
    for round_no in range(1, horizon + 1):
        if round_no <= result.rounds_played:
            series.append(result.rounds[round_no - 1].measurement_count)
        else:
            series.append(0)
    return series
