"""Overall completeness: the deadline-sensitive metric of Fig. 7.

"Each sensing task is expected to be completed before its deadline and
the overall completeness measures how good of task completeness before
their deadlines."

We report the mean, over tasks, of the fraction of required measurements
received *by the deadline* (capped at 1).  :func:`completed_fraction`
additionally reports the stricter all-or-nothing variant (fraction of
tasks fully complete by their deadline); both appear in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List

from repro.simulation.events import SimulationResult


def per_task_completeness(result: SimulationResult) -> Dict[int, float]:
    """Per task: received-by-deadline / required, capped at 1."""
    return {
        task.task_id: min(1.0, task.received_by_deadline() / task.required_measurements)
        for task in result.world.tasks
    }


def overall_completeness(result: SimulationResult) -> float:
    """Mean per-task completeness in [0, 1] (Fig. 7's y-axis, /100)."""
    fractions = per_task_completeness(result)
    if not fractions:
        return 1.0
    return sum(fractions.values()) / len(fractions)


def completeness_at_round(result: SimulationResult, round_no: int) -> float:
    """Overall completeness as it stood after round ``round_no``.

    A task's contribution is the fraction of its required measurements
    received by ``min(deadline, round_no)`` — i.e. the metric the paper
    would have reported had the experiment stopped at that round.

    Raises:
        ValueError: for a non-positive round number.
    """
    if round_no < 1:
        raise ValueError(f"round_no must be >= 1, got {round_no}")
    tasks = result.world.tasks
    if not tasks:
        return 1.0
    total = 0.0
    for task in tasks:
        cutoff = min(task.deadline, round_no)
        received = sum(
            count
            for completed_round, count in task.measurements_by_round.items()
            if completed_round <= cutoff
        )
        total += min(1.0, received / task.required_measurements)
    return total / len(tasks)


def completeness_by_round(result: SimulationResult, horizon: int) -> List[float]:
    """:func:`completeness_at_round` for every round 1..horizon (Fig. 7(b))."""
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    return [completeness_at_round(result, r) for r in range(1, horizon + 1)]


def completed_fraction(result: SimulationResult) -> float:
    """Fraction of tasks *fully* complete by their deadline (strict variant)."""
    fractions = per_task_completeness(result)
    if not fractions:
        return 1.0
    complete = sum(1 for value in fractions.values() if value >= 1.0 - 1e-12)
    return complete / len(fractions)
