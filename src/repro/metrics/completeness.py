"""Overall completeness: the deadline-sensitive metric of Fig. 7.

"Each sensing task is expected to be completed before its deadline and
the overall completeness measures how good of task completeness before
their deadlines."

We report the mean, over tasks, of the fraction of required measurements
received *by the deadline* (capped at 1).  :func:`completed_fraction`
additionally reports the stricter all-or-nothing variant (fraction of
tasks fully complete by their deadline); both appear in EXPERIMENTS.md.

**Denominator basis.** Closed-world runs average over every task (the
paper's definition).  Open-world runs can instead declare
``completeness_basis="exclude-expired"`` in their config, dropping tasks
that expired unmet from the denominator — the mechanism never got a full
deadline window for a task whose renewal lottery failed, so scoring it
is a scenario-level choice, made explicit in the config rather than
silently by the metric.
"""

from __future__ import annotations

from typing import Dict, List

from repro.simulation.events import SimulationResult
from repro.world.task import TaskStatus


def _basis_tasks(result: SimulationResult) -> List:
    """The tasks the run's configured completeness basis scores.

    ``"all"`` (the default, and the paper's definition) scores every
    task; ``"exclude-expired"`` drops tasks that expired without
    completing (open-world runs opt in via the config knob).
    """
    basis = getattr(result.config, "completeness_basis", "all")
    tasks = result.world.tasks
    if basis == "exclude-expired":
        return [t for t in tasks if t.status is not TaskStatus.EXPIRED]
    return list(tasks)


def per_task_completeness(result: SimulationResult) -> Dict[int, float]:
    """Per task: received-by-deadline / required, capped at 1.

    Covers the tasks the config's ``completeness_basis`` selects (all
    of them unless the scenario opted expired-unmet tasks out).
    """
    return {
        task.task_id: min(1.0, task.received_by_deadline() / task.required_measurements)
        for task in _basis_tasks(result)
    }


def overall_completeness(result: SimulationResult) -> float:
    """Mean per-task completeness in [0, 1] (Fig. 7's y-axis, /100)."""
    fractions = per_task_completeness(result)
    if not fractions:
        return 1.0
    return sum(fractions.values()) / len(fractions)


def completeness_at_round(result: SimulationResult, round_no: int) -> float:
    """Overall completeness as it stood after round ``round_no``.

    A task's contribution is the fraction of its required measurements
    received by ``min(deadline, round_no)`` — i.e. the metric the paper
    would have reported had the experiment stopped at that round.

    Raises:
        ValueError: for a non-positive round number.
    """
    if round_no < 1:
        raise ValueError(f"round_no must be >= 1, got {round_no}")
    tasks = _basis_tasks(result)
    if not tasks:
        return 1.0
    total = 0.0
    for task in tasks:
        cutoff = min(task.deadline, round_no)
        received = sum(
            count
            for completed_round, count in task.measurements_by_round.items()
            if completed_round <= cutoff
        )
        total += min(1.0, received / task.required_measurements)
    return total / len(tasks)


def completeness_by_round(result: SimulationResult, horizon: int) -> List[float]:
    """:func:`completeness_at_round` for every round 1..horizon (Fig. 7(b))."""
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    return [completeness_at_round(result, r) for r in range(1, horizon + 1)]


def completed_fraction(result: SimulationResult) -> float:
    """Fraction of tasks *fully* complete by their deadline (strict variant)."""
    fractions = per_task_completeness(result)
    if not fractions:
        return 1.0
    complete = sum(1 for value in fractions.values() if value >= 1.0 - 1e-12)
    return complete / len(fractions)
