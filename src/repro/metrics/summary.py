"""One-shot metrics summary of a finished simulation.

Bundles every Section VI metric into a single flat record, which is what
the experiment runner aggregates across repetitions and what the CLI and
result files serialise.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict

from repro.metrics.completeness import completed_fraction, overall_completeness
from repro.metrics.coverage import coverage
from repro.metrics.measurements import average_measurements, variance_of_measurements
from repro.metrics.profit import average_profit_per_user
from repro.metrics.rewards import average_reward_per_measurement, total_paid
from repro.simulation.events import SimulationResult


@dataclass(frozen=True)
class MetricsSummary:
    """Every headline metric of one run, as plain floats.

    Fields map to the paper's figures: ``coverage`` (Fig. 6),
    ``overall_completeness`` (Fig. 7), ``average_measurements``
    (Fig. 8(a)), ``variance_of_measurements`` (Fig. 9(a)),
    ``average_reward_per_measurement`` (Fig. 9(b)),
    ``average_profit_per_user`` over the whole run (Fig. 5 uses the
    per-round variant directly).
    """

    coverage: float
    overall_completeness: float
    completed_fraction: float
    average_measurements: float
    variance_of_measurements: float
    average_reward_per_measurement: float
    average_profit_per_user: float
    total_measurements: int
    total_paid: float
    rounds_played: int

    @classmethod
    def from_result(cls, result: SimulationResult) -> "MetricsSummary":
        """Compute the full summary from one finished run."""
        return cls(
            coverage=coverage(result),
            overall_completeness=overall_completeness(result),
            completed_fraction=completed_fraction(result),
            average_measurements=average_measurements(result),
            variance_of_measurements=variance_of_measurements(result),
            average_reward_per_measurement=average_reward_per_measurement(result),
            average_profit_per_user=average_profit_per_user(result),
            total_measurements=result.total_measurements,
            total_paid=total_paid(result),
            rounds_played=result.rounds_played,
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dict form for serialisation and aggregation."""
        return asdict(self)
