"""Planar geometry substrate for location-dependent crowdsensing.

Everything in the simulation lives on a 2-D Euclidean plane measured in
meters.  This package provides the small set of geometric primitives the
rest of the library is built on:

- :class:`~repro.geometry.point.Point` — an immutable 2-D point.
- :mod:`~repro.geometry.distances` — vectorised pairwise-distance helpers
  built on numpy, used by the task-selection solvers.
- :class:`~repro.geometry.region.RectRegion` — the rectangular deployment
  area, with uniform random sampling.
- :class:`~repro.geometry.grid_index.GridIndex` — a uniform-grid spatial
  index used to count the neighbouring mobile users of each task
  (the X3 demand factor, Eq. 5 of the paper).
"""

from repro.geometry.point import Point, euclidean, manhattan
from repro.geometry.distances import (
    pairwise_distances,
    cross_distances,
    path_length,
    distances_from,
)
from repro.geometry.region import RectRegion
from repro.geometry.grid_index import GridIndex

__all__ = [
    "Point",
    "euclidean",
    "manhattan",
    "pairwise_distances",
    "cross_distances",
    "path_length",
    "distances_from",
    "RectRegion",
    "GridIndex",
]
