"""An immutable 2-D point and elementary distance functions.

The paper's tasks and users are both "location-dependent": each sensing
task :math:`t_i` is associated with a location :math:`L_{t_i}` and each
mobile user has a current position that changes as it travels.  A
:class:`Point` represents one such location, in meters, on the plane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """An immutable point on the 2-D plane, coordinates in meters.

    Points are hashable and ordered lexicographically, so they can be used
    as dictionary keys and sorted deterministically in tests.

    >>> Point(3.0, 4.0).distance_to(Point(0.0, 0.0))
    5.0
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance in meters to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_to(self, other: "Point") -> float:
        """L1 (city-block) distance in meters to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint of the segment between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def towards(self, other: "Point", distance: float) -> "Point":
        """Return the point ``distance`` meters from ``self`` in the direction of ``other``.

        If ``distance`` meets or exceeds the separation, ``other`` is
        returned (travel never overshoots the destination).  Used by the
        mobility policies to interpolate partial movement.
        """
        total = self.distance_to(other)
        if total <= distance or total == 0.0:
            return other
        frac = distance / total
        return Point(self.x + (other.x - self.x) * frac, self.y + (other.y - self.y) * frac)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple (for numpy interop)."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points (function form)."""
    return a.distance_to(b)


def manhattan(a: Point, b: Point) -> float:
    """Manhattan distance between two points (function form)."""
    return a.manhattan_to(b)


def centroid(points: Iterable[Point]) -> Point:
    """Return the arithmetic centroid of a non-empty iterable of points.

    Raises:
        ValueError: if ``points`` is empty.
    """
    pts = list(points)
    if not pts:
        raise ValueError("centroid() requires at least one point")
    sx = sum(p.x for p in pts)
    sy = sum(p.y for p in pts)
    return Point(sx / len(pts), sy / len(pts))
