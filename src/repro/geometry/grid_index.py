"""A uniform-grid spatial index for fixed-radius neighbour queries.

The demand factor X3 (Eq. 5) needs, for every task, the number of mobile
users within R meters ("neighbouring users").  A naive all-pairs scan is
O(tasks x users) per round; the grid index makes each query inspect only
the 3x3 block of cells around the task, which matters once the engine is
swept over 40-140 users for hundreds of repetitions.

The cell size equals the query radius, so any point within ``radius`` of a
query location is guaranteed to fall in one of the 9 neighbouring cells.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point


class GridIndex:
    """Index a fixed set of points for repeated fixed-radius counting.

    Args:
        points: the points to index (e.g. current user positions).
        cell_size: side of each square cell in meters; queries with
            ``radius <= cell_size`` touch at most 9 cells.

    The index is immutable once built; the engine rebuilds it each round
    from the users' current positions, which is cheap (one dict fill).
    """

    def __init__(self, points: Sequence[Point], cell_size: float):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = float(cell_size)
        self._points: List[Point] = list(points)
        self._cells: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for idx, point in enumerate(self._points):
            self._cells[self._cell_of(point)].append(idx)
        self._array: Optional[np.ndarray] = None  # built lazily for batching

    @property
    def cell_size(self) -> float:
        return self._cell_size

    def __len__(self) -> int:
        return len(self._points)

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        return (
            int(math.floor(point.x / self._cell_size)),
            int(math.floor(point.y / self._cell_size)),
        )

    def _candidate_cells(
        self, center: Point, radius: float
    ) -> Iterable[Tuple[int, int]]:
        reach = int(math.ceil(radius / self._cell_size))
        cx, cy = self._cell_of(center)
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                yield (cx + dx, cy + dy)

    def query(self, center: Point, radius: float) -> List[int]:
        """Indices of all indexed points within ``radius`` of ``center``.

        The boundary is inclusive, matching the paper's "distance is less
        than R meters" loosely; tests pin the inclusive behaviour.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        hits: List[int] = []
        for cell in self._candidate_cells(center, radius):
            for idx in self._cells.get(cell, ()):
                if self._points[idx].distance_to(center) <= radius:
                    hits.append(idx)
        return hits

    def count_within(self, center: Point, radius: float) -> int:
        """Number of indexed points within ``radius`` of ``center``."""
        return len(self.query(center, radius))

    def counts_for(self, centers: Sequence[Point], radius: float) -> List[int]:
        """Vector of :meth:`count_within` results, one per center.

        This is the shape the demand calculator consumes: one neighbour
        count per task, from one index built per round.
        """
        return [self.count_within(center, radius) for center in centers]

    # -- batched queries ---------------------------------------------------

    #: distances this close to the radius are re-decided with the scalar
    #: predicate; np.hypot and math.hypot can disagree only in the last
    #: ulp, far inside this window for any realistic geometry.
    _BOUNDARY_TOL = 1e-6

    def _points_array(self) -> np.ndarray:
        if self._array is None:
            self._array = np.asarray(
                [(p.x, p.y) for p in self._points], dtype=float
            ).reshape(len(self._points), 2)
        return self._array

    def counts_array(self, centers: Sequence[Point], radius: float) -> np.ndarray:
        """Batched :meth:`counts_for`, identical counts, vectorised math.

        Each center still gathers candidates from its 3x3 cell block, but
        the distance test runs as one numpy expression per center instead
        of a Python loop over candidate points.  Candidates whose
        distance falls within :data:`_BOUNDARY_TOL` of the radius are
        re-decided with ``Point.distance_to`` (``math.hypot``), which is
        the scalar path's predicate — so an on-the-boundary user is
        counted by both paths or by neither.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        points = self._points_array()
        counts = np.zeros(len(centers), dtype=int)
        for i, center in enumerate(centers):
            candidates: List[int] = []
            for cell in self._candidate_cells(center, radius):
                candidates.extend(self._cells.get(cell, ()))
            if not candidates:
                continue
            idx = np.asarray(candidates, dtype=int)
            diff = points[idx] - (center.x, center.y)
            distances = np.hypot(diff[:, 0], diff[:, 1])
            inside = distances <= radius
            near = np.abs(distances - radius) <= self._BOUNDARY_TOL
            if np.any(near):
                for j in np.nonzero(near)[0]:
                    inside[j] = (
                        self._points[int(idx[j])].distance_to(center) <= radius
                    )
            counts[i] = int(np.count_nonzero(inside))
        return counts


# -- bulk counting and incremental maintenance ---------------------------

#: The 3x3 block of cell offsets a radius-sized cell query inspects.
_NINE_CELLS = np.asarray(
    [(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)], dtype=np.int64
)
#: Cell coordinates are packed into one int64 key for sorted lookup;
#: coordinates must stay within +-_CELL_OFFSET cells of the origin.
_CELL_OFFSET = np.int64(1) << 20
_CELL_STRIDE = np.int64(1) << 21


def _encode_cells(cells: np.ndarray) -> np.ndarray:
    """Pack ``(k, 2)`` integer cell coordinates into ``(k,)`` int64 keys."""
    if cells.size and np.abs(cells).max() >= _CELL_OFFSET:
        raise ValueError(
            "points lie too many cells from the origin for the packed "
            "cell encoding (|cell index| must stay below 2^20)"
        )
    return (cells[:, 0] + _CELL_OFFSET) * _CELL_STRIDE + (
        cells[:, 1] + _CELL_OFFSET
    )


def bulk_counts(
    points: Sequence[Point], centers: Sequence[Point], radius: float
) -> np.ndarray:
    """Fixed-radius neighbour counts, fully vectorised across centers.

    Returns exactly what ``GridIndex(points, cell_size=radius)
    .counts_for(centers, radius)`` returns (pinned by tests), without
    the per-center Python loop: cell membership, the 3x3 block gather,
    and the distance predicate all run as whole-array expressions, with
    the same :data:`GridIndex._BOUNDARY_TOL` band re-decided by
    ``Point.distance_to``.

    Raises:
        ValueError: for a non-positive radius (a zero radius has no
            grid cell to hash into).
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    m = len(centers)
    counts = np.zeros(m, dtype=int)
    n = len(points)
    if n == 0 or m == 0:
        return counts
    coords = np.asarray(
        [(p.x, p.y) for p in points], dtype=float
    ).reshape(n, 2)
    keys = _encode_cells(np.floor(coords / radius).astype(np.int64))
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    carr = np.asarray(
        [(c.x, c.y) for c in centers], dtype=float
    ).reshape(m, 2)
    ccells = np.floor(carr / radius).astype(np.int64)
    nkeys = _encode_cells(
        (ccells[:, None, :] + _NINE_CELLS[None, :, :]).reshape(-1, 2)
    )
    lo = np.searchsorted(sorted_keys, nkeys, side="left")
    hi = np.searchsorted(sorted_keys, nkeys, side="right")
    lengths = hi - lo
    total = int(lengths.sum())
    if total == 0:
        return counts
    # Expand the 9m [lo, hi) ranges into one flat candidate vector:
    # positions within each range are 0..len-1, offset by the range's lo.
    reps = np.repeat(np.arange(lengths.size), lengths)
    starts = np.cumsum(lengths) - lengths
    flat = np.arange(total) - np.repeat(starts, lengths) + np.repeat(lo, lengths)
    cand = order[flat]
    center_of = reps // 9
    dx = coords[cand, 0] - carr[center_of, 0]
    dy = coords[cand, 1] - carr[center_of, 1]
    distances = np.hypot(dx, dy)
    inside = distances <= radius
    near = np.abs(distances - radius) <= GridIndex._BOUNDARY_TOL
    if np.any(near):
        for j in np.nonzero(near)[0].tolist():
            inside[j] = (
                points[int(cand[j])].distance_to(centers[int(center_of[j])])
                <= radius
            )
    return np.bincount(center_of[inside], minlength=m).astype(int)


class IncrementalNeighbourCounter:
    """Eq. 5 neighbour counts maintained by movement deltas, not rebuilds.

    The per-round grid rebuild (:class:`GridIndex` + ``counts_array``)
    touches every user every round; at city scale most users do not move
    between rounds (stationary commuters, users with no reachable
    tasks), so the counter instead keeps one running count per *primed*
    center and updates it from the movers alone: a user moving from p to
    p' subtracts its old-position indicator and adds its new-position
    indicator for every center.  Indicators are computed by
    :func:`bulk_counts` with the exact :class:`GridIndex` predicate, and
    counts are integers, so any sequence of updates leaves every count
    bitwise equal to a from-scratch rebuild (pinned by tests).

    When a round moves at least :data:`FULL_REBUILD_FRACTION` of the
    population, two delta passes would cost more than one rebuild, so
    the counter recomputes everything instead — same counts, fewer
    flops.

    Args:
        points: the tracked population's starting positions, in a fixed
            index order (``apply_moves`` refers to these indices).
        radius: the neighbourhood radius R (also the grid cell size).
    """

    FULL_REBUILD_FRACTION = 0.5

    def __init__(self, points: Sequence[Point], radius: float):
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self._radius = float(radius)
        self._points: List[Point] = list(points)
        self._centers: List[Point] = []
        self._slots: Dict[Tuple[float, float], int] = {}
        self._counts = np.zeros(0, dtype=int)

    @property
    def radius(self) -> float:
        return self._radius

    def __len__(self) -> int:
        return len(self._points)

    def prime(self, centers: Sequence[Point]) -> None:
        """Start tracking counts for ``centers`` (idempotent per location).

        Priming costs one full count over the current population, so
        callers should prime every center they will ever query up front
        (the engine primes all task locations before round 1) — queries
        and moves after that never rescan the full population.
        """
        fresh: List[Point] = []
        for center in centers:
            key = (center.x, center.y)
            if key not in self._slots and not any(
                key == (c.x, c.y) for c in fresh
            ):
                fresh.append(center)
        if not fresh:
            return
        fresh_counts = bulk_counts(self._points, fresh, self._radius)
        for center, count in zip(fresh, fresh_counts):
            self._slots[(center.x, center.y)] = len(self._centers)
            self._centers.append(center)
        self._counts = np.concatenate([self._counts, fresh_counts])

    def counts_for(self, centers: Sequence[Point]) -> List[int]:
        """Current neighbour count per center (priming any new ones)."""
        if any((c.x, c.y) not in self._slots for c in centers):
            self.prime(centers)
        counts = self._counts
        return [int(counts[self._slots[(c.x, c.y)]]) for c in centers]

    def counts_array(self, centers: Sequence[Point]) -> np.ndarray:
        """:meth:`counts_for` as an array (the batched pricing shape)."""
        return np.asarray(self.counts_for(centers), dtype=int)

    def apply_moves(
        self,
        rows: Sequence[int],
        old_points: Sequence[Point],
        new_points: Sequence[Point],
    ) -> None:
        """Fold one round of movement into every tracked count.

        Args:
            rows: indices (into the constructor's ``points`` order) of
                the users that moved.
            old_points: their positions before the move — must be the
                positions previously reported, or counts would drift.
            new_points: their positions after the move.
        """
        for row, point in zip(rows, new_points):
            self._points[row] = point
        if not self._centers or not rows:
            return
        if len(rows) >= self.FULL_REBUILD_FRACTION * len(self._points):
            self._counts = bulk_counts(
                self._points, self._centers, self._radius
            )
            return
        self._counts = (
            self._counts
            - bulk_counts(old_points, self._centers, self._radius)
            + bulk_counts(new_points, self._centers, self._radius)
        )
