"""A uniform-grid spatial index for fixed-radius neighbour queries.

The demand factor X3 (Eq. 5) needs, for every task, the number of mobile
users within R meters ("neighbouring users").  A naive all-pairs scan is
O(tasks x users) per round; the grid index makes each query inspect only
the 3x3 block of cells around the task, which matters once the engine is
swept over 40-140 users for hundreds of repetitions.

The cell size equals the query radius, so any point within ``radius`` of a
query location is guaranteed to fall in one of the 9 neighbouring cells.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point


class GridIndex:
    """Index a fixed set of points for repeated fixed-radius counting.

    Args:
        points: the points to index (e.g. current user positions).
        cell_size: side of each square cell in meters; queries with
            ``radius <= cell_size`` touch at most 9 cells.

    The index is immutable once built; the engine rebuilds it each round
    from the users' current positions, which is cheap (one dict fill).
    """

    def __init__(self, points: Sequence[Point], cell_size: float):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = float(cell_size)
        self._points: List[Point] = list(points)
        self._cells: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for idx, point in enumerate(self._points):
            self._cells[self._cell_of(point)].append(idx)
        self._array: Optional[np.ndarray] = None  # built lazily for batching

    @property
    def cell_size(self) -> float:
        return self._cell_size

    def __len__(self) -> int:
        return len(self._points)

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        return (
            int(math.floor(point.x / self._cell_size)),
            int(math.floor(point.y / self._cell_size)),
        )

    def _candidate_cells(
        self, center: Point, radius: float
    ) -> Iterable[Tuple[int, int]]:
        reach = int(math.ceil(radius / self._cell_size))
        cx, cy = self._cell_of(center)
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                yield (cx + dx, cy + dy)

    def query(self, center: Point, radius: float) -> List[int]:
        """Indices of all indexed points within ``radius`` of ``center``.

        The boundary is inclusive, matching the paper's "distance is less
        than R meters" loosely; tests pin the inclusive behaviour.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        hits: List[int] = []
        for cell in self._candidate_cells(center, radius):
            for idx in self._cells.get(cell, ()):
                if self._points[idx].distance_to(center) <= radius:
                    hits.append(idx)
        return hits

    def count_within(self, center: Point, radius: float) -> int:
        """Number of indexed points within ``radius`` of ``center``."""
        return len(self.query(center, radius))

    def counts_for(self, centers: Sequence[Point], radius: float) -> List[int]:
        """Vector of :meth:`count_within` results, one per center.

        This is the shape the demand calculator consumes: one neighbour
        count per task, from one index built per round.
        """
        return [self.count_within(center, radius) for center in centers]

    # -- batched queries ---------------------------------------------------

    #: distances this close to the radius are re-decided with the scalar
    #: predicate; np.hypot and math.hypot can disagree only in the last
    #: ulp, far inside this window for any realistic geometry.
    _BOUNDARY_TOL = 1e-6

    def _points_array(self) -> np.ndarray:
        if self._array is None:
            self._array = np.asarray(
                [(p.x, p.y) for p in self._points], dtype=float
            ).reshape(len(self._points), 2)
        return self._array

    def counts_array(self, centers: Sequence[Point], radius: float) -> np.ndarray:
        """Batched :meth:`counts_for`, identical counts, vectorised math.

        Each center still gathers candidates from its 3x3 cell block, but
        the distance test runs as one numpy expression per center instead
        of a Python loop over candidate points.  Candidates whose
        distance falls within :data:`_BOUNDARY_TOL` of the radius are
        re-decided with ``Point.distance_to`` (``math.hypot``), which is
        the scalar path's predicate — so an on-the-boundary user is
        counted by both paths or by neither.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        points = self._points_array()
        counts = np.zeros(len(centers), dtype=int)
        for i, center in enumerate(centers):
            candidates: List[int] = []
            for cell in self._candidate_cells(center, radius):
                candidates.extend(self._cells.get(cell, ()))
            if not candidates:
                continue
            idx = np.asarray(candidates, dtype=int)
            diff = points[idx] - (center.x, center.y)
            distances = np.hypot(diff[:, 0], diff[:, 1])
            inside = distances <= radius
            near = np.abs(distances - radius) <= self._BOUNDARY_TOL
            if np.any(near):
                for j in np.nonzero(near)[0]:
                    inside[j] = (
                        self._points[int(idx[j])].distance_to(center) <= radius
                    )
            counts[i] = int(np.count_nonzero(inside))
        return counts
