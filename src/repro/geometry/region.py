"""Rectangular deployment regions with uniform random sampling.

The paper's experiments place tasks and users uniformly at random in a
3000 m x 3000 m area.  :class:`RectRegion` models that area and is the
single source of random locations in the world generators, so every
placement flows through one seeded :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.geometry.point import Point


@dataclass(frozen=True)
class RectRegion:
    """An axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]`` in meters."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(
                f"degenerate region: ({self.x_min}, {self.y_min}) .. "
                f"({self.x_max}, {self.y_max})"
            )

    @classmethod
    def square(cls, side: float) -> "RectRegion":
        """A ``side x side`` square anchored at the origin (paper default: 3000 m)."""
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        return cls(0.0, 0.0, side, side)

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    @property
    def diagonal(self) -> float:
        """Length of the diagonal — an upper bound on any in-region distance."""
        return Point(self.x_min, self.y_min).distance_to(Point(self.x_max, self.y_max))

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the region (boundary inclusive)."""
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the region (identity for interior points)."""
        return Point(
            min(max(point.x, self.x_min), self.x_max),
            min(max(point.y, self.y_min), self.y_max),
        )

    def sample(self, rng: np.random.Generator, count: int) -> List[Point]:
        """Draw ``count`` points uniformly at random from the region."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        xs = rng.uniform(self.x_min, self.x_max, size=count)
        ys = rng.uniform(self.y_min, self.y_max, size=count)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]

    def sample_cluster(
        self,
        rng: np.random.Generator,
        center: Point,
        spread: float,
        count: int,
    ) -> List[Point]:
        """Draw ``count`` points from a Gaussian cluster, clamped to the region.

        Used by the clustered world generator to model a dense downtown
        with remote districts — the setting where the paper's "inherent
        inequality among location-dependent sensing tasks" is sharpest.
        """
        if spread < 0:
            raise ValueError(f"spread must be non-negative, got {spread}")
        xs = rng.normal(center.x, spread, size=count)
        ys = rng.normal(center.y, spread, size=count)
        return [self.clamp(Point(float(x), float(y))) for x, y in zip(xs, ys)]
