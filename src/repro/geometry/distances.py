"""Vectorised distance computations over collections of points.

The dynamic-programming task selector (Section V-A of the paper) works on
a *travel graph*: the user's origin plus the locations of the candidate
tasks, with edge weights equal to pairwise travel distances.  These
helpers build those matrices with numpy so a single selector call does no
per-pair Python arithmetic.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.geometry.point import Point


def _as_array(points: Iterable[Point]) -> np.ndarray:
    """Convert an iterable of points to an ``(n, 2)`` float array."""
    pts = list(points)
    if not pts:
        return np.empty((0, 2), dtype=float)
    return np.asarray([(p.x, p.y) for p in pts], dtype=float)


def pairwise_distances(points: Sequence[Point]) -> np.ndarray:
    """Return the symmetric ``(n, n)`` matrix of Euclidean distances.

    ``result[i, j]`` is the travel distance in meters between
    ``points[i]`` and ``points[j]``; the diagonal is zero.
    """
    arr = _as_array(points)
    if arr.shape[0] == 0:
        return np.empty((0, 0), dtype=float)
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt((diff ** 2).sum(axis=2))


def cross_distances(sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
    """Return the ``(len(sources), len(targets))`` distance matrix."""
    a = _as_array(sources)
    b = _as_array(targets)
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.empty((a.shape[0], b.shape[0]), dtype=float)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff ** 2).sum(axis=2))


def distances_from(origin: Point, targets: Sequence[Point]) -> np.ndarray:
    """Return the 1-D array of distances from ``origin`` to each target."""
    b = _as_array(targets)
    if b.shape[0] == 0:
        return np.empty((0,), dtype=float)
    diff = b - np.asarray(origin.as_tuple(), dtype=float)
    return np.sqrt((diff ** 2).sum(axis=1))


def path_length(points: Sequence[Point]) -> float:
    """Total length of the polyline visiting ``points`` in order.

    This is exactly the travel distance :math:`\\Gamma_{T^k_{u_i}}` of
    Eq. 1 for a user that starts at ``points[0]`` and visits the remaining
    points in sequence.  A path of zero or one point has length 0.
    """
    if len(points) < 2:
        return 0.0
    arr = _as_array(points)
    seg = np.diff(arr, axis=0)
    return float(np.sqrt((seg ** 2).sum(axis=1)).sum())


def nearest_index(origin: Point, targets: Sequence[Point]) -> int:
    """Index of the target nearest to ``origin``.

    Raises:
        ValueError: if ``targets`` is empty.
    """
    if not targets:
        raise ValueError("nearest_index() requires at least one target")
    return int(np.argmin(distances_from(origin, targets)))
