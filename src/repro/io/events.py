"""JSONL export/import of full simulation histories.

A :class:`~repro.simulation.events.SimulationResult` is the library's
in-memory truth; this module flattens it to one JSON object per line —
one ``meta`` line, one line per round — so external tooling (pandas,
jq, spreadsheets) can consume runs without importing the library, and so
runs can be archived next to the experiment results they produced.

The loader rebuilds a *replay*: the structured history and the task
outcomes, sufficient for every metric in :mod:`repro.metrics` that reads
rounds (coverage, measurements, rewards, profits).  It does not rebuild
live ``World`` objects — replays are for analysis, not resumption.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Union

from repro.dynamics.processes import WorldEvent
from repro.simulation.events import (
    MeasurementEvent,
    RejectedContribution,
    RoundRecord,
    SimulationResult,
    UserRoundRecord,
)
from repro.obs.metrics import MetricsRegistry
from repro.simulation.perf import PerfStats

FORMAT_VERSION = 1


def _round_payload(record: RoundRecord) -> Dict:
    return {
        "kind": "round",
        "round_no": record.round_no,
        "published_rewards": {str(k): v for k, v in record.published_rewards.items()},
        "user_records": [
            {
                "user_id": r.user_id,
                "selected_task_ids": list(r.selected_task_ids),
                "distance": r.distance,
                "reward": r.reward,
                "cost": r.cost,
            }
            for r in record.user_records
        ],
        "measurements": [
            [e.round_no, e.task_id, e.user_id, e.reward] for e in record.measurements
        ],
        "rejections": [
            [e.round_no, e.task_id, e.user_id, e.reason] for e in record.rejections
        ],
        "completed_task_ids": list(record.completed_task_ids),
        "expired_task_ids": list(record.expired_task_ids),
        "selector_fallbacks": record.selector_fallbacks,
        **(
            {"perf": record.perf.as_dict()} if record.perf is not None else {}
        ),
        **(
            {"metrics": record.metrics.as_dict()} if record.metrics else {}
        ),
        # Only open-world rounds carry dynamics events; closed-world
        # lines stay byte-identical to pre-dynamics logs.
        **(
            {"dynamics": [e.as_dict() for e in record.dynamics]}
            if record.dynamics
            else {}
        ),
    }


def _meta_payload(world, rounds_played: int) -> Dict:
    return {
        "kind": "meta",
        "format_version": FORMAT_VERSION,
        "rounds_played": rounds_played,
        "n_tasks": len(world.tasks),
        "n_users": len(world.users),
        "task_deadlines": {str(t.task_id): t.deadline for t in world.tasks},
        "task_required": {
            str(t.task_id): t.required_measurements for t in world.tasks
        },
    }


def write_events_jsonl(result: SimulationResult, path: Union[str, Path]) -> Path:
    """Write one meta line plus one line per round (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = _meta_payload(result.world, result.rounds_played)
    with path.open("w") as handle:
        handle.write(json.dumps(meta) + "\n")
        for record in result.rounds:
            handle.write(json.dumps(_round_payload(record)) + "\n")
    return path


class RoundStreamWriter:
    """Streams round records to an events JSONL as they finish.

    Register an instance as an engine observer and a large run writes
    its full history to disk without holding any round in memory —
    pair with ``SimulationConfig(stream_rounds=True)``.  The format is
    identical to :func:`write_events_jsonl` except that the meta line's
    ``rounds_played`` is unknown at open time (written as 0; the reader
    counts round lines, it never trusts the meta figure).

    Usable as a context manager; :meth:`close` is idempotent.

    >>> with RoundStreamWriter("events.jsonl", engine.world) as stream:
    ...     engine.observers.append(stream)
    ...     engine.run()                                   # doctest: +SKIP
    """

    def __init__(self, path: Union[str, Path], world) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.rounds_written = 0
        self._handle = self.path.open("w")
        self._handle.write(json.dumps(_meta_payload(world, 0)) + "\n")

    def __call__(self, record: RoundRecord) -> None:
        if self._handle is None:
            raise ValueError(f"{self.path}: stream writer already closed")
        self._handle.write(json.dumps(_round_payload(record)) + "\n")
        self.rounds_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RoundStreamWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class SimulationReplay:
    """A loaded history: rounds + the task parameters metrics need."""

    rounds: List[RoundRecord]
    n_tasks: int
    n_users: int
    task_deadlines: Dict[int, int]
    task_required: Dict[int, int]

    @property
    def total_measurements(self) -> int:
        return sum(r.measurement_count for r in self.rounds)

    @property
    def total_paid(self) -> float:
        return sum(r.total_paid for r in self.rounds)

    def metrics_totals(self) -> MetricsRegistry:
        """All rounds' metric snapshots merged, in round order (empty
        for logs written before the registry existed)."""
        return MetricsRegistry.merged(r.metrics for r in self.rounds)

    def measurements_by_task(self) -> Dict[int, int]:
        counts = {task_id: 0 for task_id in self.task_deadlines}
        for record in self.rounds:
            for event in record.measurements:
                # .get tolerates tasks the meta line predates (open-world
                # logs publish tasks mid-run; the loader folds them in,
                # but older tooling may hand-build partial replays).
                counts[event.task_id] = counts.get(event.task_id, 0) + 1
        return counts


def read_events_jsonl(path: Union[str, Path]) -> SimulationReplay:
    """Load a history written by :func:`write_events_jsonl`.

    Raises:
        ValueError: for a missing meta line or foreign format version.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty event log")
    meta = json.loads(lines[0])
    if meta.get("kind") != "meta" or meta.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: not a version-{FORMAT_VERSION} event log (got {meta.get('kind')!r})"
        )
    rounds: List[RoundRecord] = []
    for line in lines[1:]:
        payload = json.loads(line)
        if payload.get("kind") != "round":
            raise ValueError(f"{path}: unexpected line kind {payload.get('kind')!r}")
        rounds.append(RoundRecord(
            round_no=payload["round_no"],
            published_rewards={
                int(k): v for k, v in payload["published_rewards"].items()
            },
            user_records=tuple(
                UserRoundRecord(
                    round_no=payload["round_no"],
                    user_id=r["user_id"],
                    selected_task_ids=tuple(r["selected_task_ids"]),
                    distance=r["distance"],
                    reward=r["reward"],
                    cost=r["cost"],
                )
                for r in payload["user_records"]
            ),
            measurements=tuple(
                MeasurementEvent(*entry) for entry in payload["measurements"]
            ),
            rejections=tuple(
                RejectedContribution(*entry) for entry in payload["rejections"]
            ),
            completed_task_ids=tuple(payload["completed_task_ids"]),
            expired_task_ids=tuple(payload["expired_task_ids"]),
            # absent in logs written before the watchdog existed
            selector_fallbacks=payload.get("selector_fallbacks", 0),
            # absent in logs written before the perf counters existed
            perf=(
                PerfStats.from_dict(payload["perf"])
                if "perf" in payload
                else None
            ),
            # absent in logs written before the metrics registry existed
            metrics=(
                MetricsRegistry.from_dict(payload["metrics"])
                if "metrics" in payload
                else None
            ),
            # absent in closed-world logs (and all pre-dynamics ones)
            dynamics=tuple(
                WorldEvent.from_dict(entry)
                for entry in payload.get("dynamics", ())
            ),
        ))
    task_deadlines = {int(k): v for k, v in meta["task_deadlines"].items()}
    task_required = {int(k): v for k, v in meta["task_required"].items()}
    # Open-world logs publish tasks mid-run (and may renew deadlines);
    # fold those into the task tables so replay metrics cover them.
    for record in rounds:
        for event in record.dynamics:
            if event.kind == "task_published":
                task_deadlines[event.subject_id] = event.get("deadline")
                task_required[event.subject_id] = event.get("required")
            elif event.kind == "deadline_renewed":
                task_deadlines[event.subject_id] = event.get("deadline")
    return SimulationReplay(
        rounds=rounds,
        n_tasks=len(task_deadlines),
        n_users=meta["n_users"],
        task_deadlines=task_deadlines,
        task_required=task_required,
    )
