"""Crash-safe file writes: temp file + fsync + atomic rename.

The write-then-rename idiom guarantees a reader never observes a
half-written file: either the old content (or absence) or the complete
new content, nothing in between.  The temp file lives in the *target's*
directory so the final ``os.replace`` stays within one filesystem (rename
is only atomic there).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_text(
    path: Union[str, Path], text: str, durable: bool = True
) -> Path:
    """Write ``text`` to ``path`` atomically (parents created).

    Args:
        path: the destination file.
        text: the full new content.
        durable: also fsync the temp file before the rename, so the
            content survives power loss, not just process crash.

    Returns the resolved destination path.  On any failure the
    destination is untouched and the temp file is removed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(text)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - already gone
            pass
        raise
    return path
