"""Aligned ASCII and markdown rendering of tabular results.

This is how the CLI and the benchmark harness print "the same rows the
paper reports": one row per x value, one column per compared series.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.analysis.series import ExperimentResult


def _format_cell(value: Any, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    header: Sequence[str], rows: Sequence[Sequence[Any]], precision: int = 2
) -> str:
    """Render rows as an aligned monospace table.

    Raises:
        ValueError: if any row's width differs from the header's.
    """
    width = len(header)
    for row in rows:
        if len(row) != width:
            raise ValueError(
                f"row width {len(row)} != header width {width}: {row}"
            )
    text_rows: List[List[str]] = [
        [_format_cell(value, precision) for value in row] for row in rows
    ]
    widths = [
        max(len(str(header[col])), *(len(row[col]) for row in text_rows))
        if text_rows
        else len(str(header[col]))
        for col in range(width)
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_experiment(result: ExperimentResult, precision: int = 2) -> str:
    """Title + metadata line + the aligned series table."""
    meta_bits = [f"{key}={value}" for key, value in sorted(result.metadata.items())]
    lines = [
        f"{result.experiment_id}: {result.title}",
        f"  [{', '.join(meta_bits)}]" if meta_bits else "",
        "",
        render_table(result.header(), result.rows(), precision),
    ]
    return "\n".join(line for line in lines if line != "")


def render_markdown(
    header: Sequence[str], rows: Sequence[Sequence[Any]], precision: int = 2
) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    width = len(header)
    for row in rows:
        if len(row) != width:
            raise ValueError(
                f"row width {len(row)} != header width {width}: {row}"
            )
    lines = [
        "| " + " | ".join(str(h) for h in header) + " |",
        "|" + "|".join(["---"] * width) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format_cell(v, precision) for v in row) + " |"
        )
    return "\n".join(lines)
