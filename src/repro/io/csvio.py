"""CSV export/import of experiment series (for external plotting tools)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.analysis.series import ExperimentResult, Series, SeriesPoint

_COLUMNS = ("series", "x", "mean", "std", "n")


def write_series_csv(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write every (series, x, mean, std, n) observation as one CSV row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        for series in result.series:
            for point in series.points:
                writer.writerow([series.label, point.x, point.mean, point.std, point.n])
    return path


def read_series_csv(
    path: Union[str, Path],
    experiment_id: str = "imported",
    title: str = "imported",
    x_label: str = "x",
    y_label: str = "y",
) -> ExperimentResult:
    """Read a CSV written by :func:`write_series_csv` back into a result.

    The axis labels are not stored in the CSV (it is a plotting export),
    so callers may re-supply them.

    Raises:
        ValueError: if the header does not match the expected columns.
    """
    rows = []
    with Path(path).open(newline="") as handle:
        reader = csv.reader(handle)
        header = tuple(next(reader))
        if header != _COLUMNS:
            raise ValueError(f"{path}: unexpected CSV header {header}")
        rows = list(reader)

    by_label: dict = {}
    for label, x, mean, std, n in rows:
        by_label.setdefault(label, []).append(
            SeriesPoint(x=float(x), mean=float(mean), std=float(std), n=int(n))
        )
    series = [
        Series(label=label, points=tuple(sorted(points, key=lambda p: p.x)))
        for label, points in by_label.items()
    ]
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label=x_label,
        y_label=y_label,
        series=series,
    )
