"""Plain-text line charts for experiment series.

There is no plotting stack in this environment (and none is needed to
*read* a reproduction), but eyeballing a curve beats scanning a table.
``repro run fig6a --chart`` renders the panel as a fixed-size character
grid: one marker per series, shared y-scale, labelled extremes.

Marker collisions (two series on the same cell) render as ``*`` — with
three mechanisms whose curves overlap at 100 % this happens a lot, and
hiding one of them silently would misread as divergence.
"""

from __future__ import annotations

from typing import List

from repro.analysis.series import ExperimentResult, Series

#: Per-series markers, assigned in series order.
MARKERS = "ox+#@%"

#: Marker used when several series land on the same cell.
COLLISION = "*"


def _scale(value: float, low: float, high: float, size: int) -> int:
    """Map ``value`` in [low, high] to a row/column index in [0, size-1]."""
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return min(size - 1, max(0, int(round(fraction * (size - 1)))))


def render_chart(
    result: ExperimentResult,
    width: int = 60,
    height: int = 16,
) -> str:
    """Render every series of ``result`` on one character grid.

    Args:
        width / height: grid size in characters (axes excluded).

    Raises:
        ValueError: for a degenerate grid or a result with no points.
    """
    if width < 8 or height < 4:
        raise ValueError(f"grid too small: {width}x{height}")
    points = [(s, p) for s in result.series for p in s.points]
    if not points:
        raise ValueError(f"{result.experiment_id} has no points to chart")

    xs = [p.x for _s, p in points]
    ys = [p.mean for _s, p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_high == y_low:  # flat chart: pad so the line sits mid-grid
        y_low -= 1.0
        y_high += 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, series in enumerate(result.series):
        marker = MARKERS[index % len(MARKERS)]
        for point in series.points:
            column = _scale(point.x, x_low, x_high, width)
            row = height - 1 - _scale(point.mean, y_low, y_high, height)
            cell = grid[row][column]
            grid[row][column] = marker if cell == " " else COLLISION

    y_label_width = max(len(f"{y_high:.4g}"), len(f"{y_low:.4g}"))
    lines = [f"{result.experiment_id}: {result.title}"]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:.4g}".rjust(y_label_width)
        elif row_index == height - 1:
            label = f"{y_low:.4g}".rjust(y_label_width)
        else:
            label = " " * y_label_width
        lines.append(f"{label} |{''.join(row)}|")
    x_axis = f"{x_low:.4g}".ljust(width - len(f"{x_high:.4g}")) + f"{x_high:.4g}"
    lines.append(" " * y_label_width + "  " + x_axis)
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={series.label}"
        for i, series in enumerate(result.series)
    )
    lines.append(f"{' ' * y_label_width}  [{legend}; {COLLISION}=overlap]"
                 f"  y: {result.y_label}, x: {result.x_label}")
    return "\n".join(lines)


def render_sparkline(series: Series, width: int = 40) -> str:
    """A one-line unicode sparkline of a series' means.

    Resamples to ``width`` columns by nearest-point lookup; constant
    series render as a flat mid-height bar.
    """
    if not series.points:
        raise ValueError(f"series {series.label!r} is empty")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    blocks = "▁▂▃▄▅▆▇█"
    means = series.means
    low, high = min(means), max(means)
    columns = []
    for i in range(min(width, len(means))):
        value = means[round(i * (len(means) - 1) / max(1, min(width, len(means)) - 1))]
        if high == low:
            columns.append(blocks[3])
        else:
            columns.append(blocks[_scale(value, low, high, len(blocks))])
    return f"{series.label} {''.join(columns)} [{low:.4g}..{high:.4g}]"
