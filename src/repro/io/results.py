"""JSON persistence for experiment results.

Files carry a format version so a result written by one release can be
rejected loudly (not mis-parsed silently) by an incompatible one.

Writes are **atomic** (temp file + fsync + rename, see
:mod:`repro.io.atomic`) and retried on transient IO failure, so an
interrupt mid-save never leaves a truncated JSON behind; a corrupt file
on disk surfaces as :class:`~repro.resilience.errors.ResultCorruption`
naming the path, not as a bare ``json.JSONDecodeError``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.analysis.series import ExperimentResult
from repro.io.atomic import atomic_write_text
from repro.resilience.errors import ResultCorruption
from repro.resilience.retry import with_retries

FORMAT_VERSION = 1


def save_result(
    result: ExperimentResult, path: Union[str, Path], attempts: int = 3
) -> Path:
    """Write an experiment result to ``path`` as JSON (parents created).

    The write is atomic — a crash mid-save leaves either the previous
    file or the complete new one — and transient IO failures are retried
    up to ``attempts`` times with exponential backoff.

    Returns the resolved path for logging convenience.
    """
    path = Path(path)
    payload = {"format_version": FORMAT_VERSION, "result": result.as_dict()}
    text = json.dumps(payload, indent=2, sort_keys=True)
    return with_retries(lambda: atomic_write_text(path, text), attempts=attempts)


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read an experiment result written by :func:`save_result`.

    Raises:
        ResultCorruption: for undecodable JSON or a malformed payload
            (the message names the file and suggests re-running the
            experiment that produced it).
        ValueError: for a missing/foreign format version
            (:class:`ResultCorruption` is a ``ValueError`` too).
        FileNotFoundError: if the file does not exist.
    """
    path = Path(path)
    text = path.read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ResultCorruption(
            f"{path}: not valid JSON ({exc.msg} at line {exc.lineno}) — the "
            f"file is corrupt, likely from an interrupted write by an older "
            f"release; re-run the experiment to regenerate it"
        ) from exc
    if not isinstance(payload, dict):
        raise ResultCorruption(
            f"{path}: expected a JSON object, got {type(payload).__name__}; "
            f"re-run the experiment to regenerate it"
        )
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ResultCorruption(
            f"{path}: format version {version!r} not supported "
            f"(this release reads {FORMAT_VERSION})"
        )
    try:
        return ExperimentResult.from_dict(payload["result"])
    except (KeyError, TypeError) as exc:
        raise ResultCorruption(
            f"{path}: malformed result payload ({exc!r}); re-run the "
            f"experiment to regenerate it"
        ) from exc
