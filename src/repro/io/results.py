"""JSON persistence for experiment results.

Files carry a format version so a result written by one release can be
rejected loudly (not mis-parsed silently) by an incompatible one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.analysis.series import ExperimentResult

FORMAT_VERSION = 1


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write an experiment result to ``path`` as JSON (parents created).

    Returns the resolved path for logging convenience.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"format_version": FORMAT_VERSION, "result": result.as_dict()}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read an experiment result written by :func:`save_result`.

    Raises:
        ValueError: for a missing/foreign format version.
        FileNotFoundError: if the file does not exist.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: format version {version!r} not supported "
            f"(this release reads {FORMAT_VERSION})"
        )
    return ExperimentResult.from_dict(payload["result"])
