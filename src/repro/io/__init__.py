"""Result persistence and table rendering.

- :mod:`~repro.io.results` — save/load experiment results as JSON.
- :mod:`~repro.io.csvio` — export series as CSV for external plotting.
- :mod:`~repro.io.tables` — render results as aligned ASCII / markdown
  tables (what the CLI and the benchmark harness print).
- :mod:`~repro.io.atomic` — crash-safe write primitive used by every
  persister in this package.
"""

from repro.io.atomic import atomic_write_text
from repro.io.results import save_result, load_result
from repro.io.csvio import write_series_csv, read_series_csv
from repro.io.tables import render_table, render_experiment, render_markdown
from repro.io.ascii_chart import render_chart, render_sparkline
from repro.io.worldmap import render_world

__all__ = [
    "atomic_write_text",
    "save_result",
    "load_result",
    "write_series_csv",
    "read_series_csv",
    "render_table",
    "render_experiment",
    "render_markdown",
    "render_chart",
    "render_sparkline",
    "render_world",
]
