"""ASCII rendering of the deployment area: where tasks and users are.

Used by the examples and the ``repro simulate --map`` flag to show the
spatial story behind the numbers — clustered users, a starved corner
task, the drift of the crowd over rounds.

Cell precedence (when several entities share a cell): an incomplete task
is the thing the reader is looking for, so task markers win over user
markers, and the needier marker wins between tasks.
"""

from __future__ import annotations

from typing import List

from repro.world.generator import World
from repro.world.task import SensingTask, TaskStatus

#: Marker per task state, by precedence (highest first).
EXPIRED = "X"
ACTIVE = "T"
COMPLETED = "C"
USER = "."
EMPTY = " "

_PRECEDENCE = {EXPIRED: 3, ACTIVE: 2, COMPLETED: 1, USER: 0}


def _task_marker(task: SensingTask) -> str:
    if task.status is TaskStatus.EXPIRED:
        return EXPIRED
    if task.status is TaskStatus.COMPLETED:
        return COMPLETED
    return ACTIVE


def render_world(world: World, width: int = 60, height: int = 24) -> str:
    """Render the world's current state on a ``width x height`` grid.

    Raises:
        ValueError: for a degenerate grid.
    """
    if width < 10 or height < 5:
        raise ValueError(f"grid too small: {width}x{height}")
    region = world.region
    grid: List[List[str]] = [[EMPTY] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = 0
        row = 0
        if region.width > 0:
            column = min(width - 1, int((x - region.x_min) / region.width * width))
        if region.height > 0:
            row = min(height - 1, int((y - region.y_min) / region.height * height))
        row = height - 1 - row  # y grows upward on the map
        current = grid[row][column]
        if current == EMPTY or _PRECEDENCE[marker] > _PRECEDENCE.get(current, -1):
            grid[row][column] = marker

    for user in world.users:
        place(user.location.x, user.location.y, USER)
    for task in world.tasks:
        place(task.location.x, task.location.y, _task_marker(task))

    active = sum(1 for t in world.tasks if t.status is TaskStatus.ACTIVE)
    completed = sum(1 for t in world.tasks if t.status is TaskStatus.COMPLETED)
    expired = sum(1 for t in world.tasks if t.status is TaskStatus.EXPIRED)
    lines = ["+" + "-" * width + "+"]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    lines.append(
        f"{ACTIVE}=active({active})  {COMPLETED}=completed({completed})  "
        f"{EXPIRED}=expired({expired})  {USER}=user({len(world.users)})  "
        f"area {region.width:.0f}x{region.height:.0f} m"
    )
    return "\n".join(lines)
