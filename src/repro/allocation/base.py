"""The coordinator interface for SAT-mode allocation.

A coordinator sees the whole round — every active task with its state
and every user with its position/budget — and returns one
:class:`~repro.selection.base.Selection` per user.  The engine then
executes those selections exactly as it would execute user-chosen ones
(same acceptance caps, payments, and mobility), so WST and SAT results
are directly comparable.

Contract (enforced by the engine's accounting and the tests):

- each returned selection must respect that user's travel budget,
- a user must not be assigned a task it already contributed to,
- the reported distance/reward/cost must match the visit order at the
  published prices.
"""

from __future__ import annotations

import abc
from typing import Dict, Sequence

from repro.selection.base import Selection
from repro.world.task import SensingTask
from repro.world.user import MobileUser


class Coordinator(abc.ABC):
    """A server-side allocator for the SAT simulation mode."""

    #: registry-style name, used in experiment rows
    name: str = "abstract"

    @abc.abstractmethod
    def assign(
        self,
        round_no: int,
        active_tasks: Sequence[SensingTask],
        users: Sequence[MobileUser],
        prices: Dict[int, float],
    ) -> Dict[int, Selection]:
        """Return a selection per user id (users may be omitted = sit out).

        Args:
            round_no: the 1-based round being planned.
            active_tasks: tasks still published, with live progress state.
            users: all users, positioned at their round-start locations.
            prices: the incentive mechanism's published per-task rewards —
                SAT still pays users per measurement, so assignments
                should keep every user's profit non-negative.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
