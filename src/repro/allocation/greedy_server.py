"""A deadline-urgency global greedy allocator (the SAT reference point).

Each round the server plans with full information:

1. rank active tasks by urgency — fewest rounds to deadline first,
   largest unmet need first,
2. for each unmet measurement slot of each task (in that order), assign
   the *cheapest* eligible user: smallest marginal travel distance from
   the end of the user's already-planned path, subject to the user's
   travel budget, the one-contribution-per-user rule, and a rational-user
   check (the published reward must cover the marginal travel cost, or
   the user would refuse the assignment),
3. hand every user its planned visit order as a Selection.

This is not optimal (global assignment with routing is NP-hard too) and
it is deliberately simple — per-slot cheapest-user assignment is myopic
about routing.  Its value is as an informed reference: it never
over-assigns a task (the WST redundancy drawback cannot occur) and it
points spare capacity at the most deadline-critical work, so comparing
it against the incentive-driven WST modes separates what central
*control* buys from what demand-aware *pricing* buys.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.allocation.base import Coordinator
from repro.geometry.point import Point
from repro.selection.base import Selection
from repro.world.task import SensingTask
from repro.world.user import MobileUser


class _UserPlan:
    """Mutable per-round planning state for one user."""

    __slots__ = ("user", "position", "distance", "reward", "task_ids")

    def __init__(self, user: MobileUser):
        self.user = user
        self.position: Point = user.location
        self.distance = 0.0
        self.reward = 0.0
        self.task_ids: List[int] = []

    def marginal_distance(self, location: Point) -> float:
        return self.position.distance_to(location)

    def can_take(self, location: Point, price: float) -> bool:
        leg = self.marginal_distance(location)
        if self.distance + leg > self.user.max_travel_distance:
            return False
        # Rational-user check: the measurement must pay for its own leg.
        return price >= self.user.travel_cost(leg)

    def take(self, task_id: int, location: Point, price: float) -> None:
        leg = self.marginal_distance(location)
        self.distance += leg
        self.reward += price
        self.position = location
        self.task_ids.append(task_id)

    def selection(self) -> Selection:
        return Selection(
            task_ids=tuple(self.task_ids),
            distance=self.distance,
            reward=self.reward,
            cost=self.user.travel_cost(self.distance),
        )


class GreedyServerCoordinator(Coordinator):
    """Global greedy SAT allocation by deadline urgency (module docstring).

    Args:
        max_tasks_per_user: cap on assignments per user per round; keeps
            single users from being routed on marathon tours the WST
            selectors would never produce (comparability knob).
    """

    name = "sat-greedy"

    def __init__(self, max_tasks_per_user: int = 6):
        if max_tasks_per_user < 1:
            raise ValueError(
                f"max_tasks_per_user must be >= 1, got {max_tasks_per_user}"
            )
        self.max_tasks_per_user = max_tasks_per_user

    def assign(
        self,
        round_no: int,
        active_tasks: Sequence[SensingTask],
        users: Sequence[MobileUser],
        prices: Dict[int, float],
    ) -> Dict[int, Selection]:
        plans = {user.user_id: _UserPlan(user) for user in users}
        by_urgency = sorted(
            active_tasks,
            key=lambda t: (t.deadline - round_no, -t.remaining),
        )
        for task in by_urgency:
            price = prices[task.task_id]
            for _slot in range(task.remaining):
                plan = self._cheapest_eligible(task, plans, price)
                if plan is None:
                    break  # nobody can serve this task any more this round
                plan.take(task.task_id, task.location, price)
        return {
            user_id: plan.selection()
            for user_id, plan in plans.items()
            if plan.task_ids
        }

    def _cheapest_eligible(
        self,
        task: SensingTask,
        plans: Dict[int, _UserPlan],
        price: float,
    ) -> _UserPlan:
        best: _UserPlan = None
        best_leg = float("inf")
        for plan in plans.values():
            if len(plan.task_ids) >= self.max_tasks_per_user:
                continue
            if plan.user.user_id in task.contributors:
                continue
            if task.task_id in plan.task_ids:
                continue
            if not plan.can_take(task.location, price):
                continue
            leg = plan.marginal_distance(task.location)
            if leg < best_leg:
                best_leg = leg
                best = plan
        return best
