"""Server-Assigned-Tasks (SAT) mode: centralized task allocation.

The paper (Sections II–III) contrasts its Worker-Selected-Tasks (WST)
design against the SAT mode, where "the server has the global
information of the tasks as well as mobile users" and assigns work
centrally.  The paper argues WST is more practical but concedes its
drawback: "the server does not have any control over the allocation of
sensing tasks.  This may result that some sensing tasks cannot be
completed, while others are completed redundantly."

This package makes that comparison executable.  A
:class:`~repro.allocation.base.Coordinator` plugs into the simulation
engine and replaces the per-user Eq. 1 selection with a centralized
assignment; :class:`~repro.allocation.greedy_server.GreedyServerCoordinator`
implements a deadline-urgency-driven global greedy — an informed upper
bound on what central control buys.  The ``sat-vs-wst`` experiment
(:mod:`repro.experiments.sat_comparison`) reports how close the
demand-based WST mechanism gets to it.
"""

from repro.allocation.base import Coordinator
from repro.allocation.greedy_server import GreedyServerCoordinator

__all__ = ["Coordinator", "GreedyServerCoordinator"]
