"""The run store: an append-only, queryable history of runs.

PR 3 made every run emit telemetry — manifests, metric registries, trace
summaries — but each artifact was write-only: nothing compared runs over
time, so perf trajectories and paper-shape claims were checked by
eyeball.  The store gives that telemetry a durable, queryable home:

- one directory per store, holding a JSONL **index** (one line per
  ingested run, carrying the flat numeric summary and labels, so every
  query below is answered without opening payloads) and a ``runs/``
  payload tree (one directory per run with the full record: manifest,
  metrics registry snapshot, trace summary);
- ingestion is **append-only** and serialized by an exclusive file lock
  (``flock`` where available), so concurrent benchmark processes and CI
  jobs can ingest into one store without corrupting the index — the same
  discipline as :class:`~repro.resilience.journal.RunJournal`, whose
  crash-tolerance rules apply here too (a partial trailing index line is
  skipped on read; the payload it pointed at was never indexed);
- every run gets a **stable run id** ``<kind>-<seq>`` assigned under the
  lock, so ids are monotonic in ingestion order and a metric's history
  is simply its value read across the index in order;
- index lines and payloads both carry ``format_version`` — a store
  written by a future schema loads loudly (:class:`StoreError`), never
  silently misread.

:mod:`repro.obs.regress` consumes the store for baseline-window
regression verdicts; :mod:`repro.obs.report` renders it as dashboards.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.obs.metrics import Histogram

try:  # POSIX: real inter-process exclusion.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX (e.g. Windows)
    fcntl = None

#: Env var forcing the portable lockfile path even where fcntl exists —
#: how the fallback is exercised by the multiprocess stress test.
NO_FCNTL_ENV = "REPRO_OBS_NO_FCNTL"

#: A fallback lockfile older than this is presumed left by a dead
#: process (belt and braces next to the liveness probe on its pid).
STALE_LOCK_SECONDS = 30.0


def _use_fcntl() -> bool:
    return fcntl is not None and not os.environ.get(NO_FCNTL_ENV)


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's process
        return True
    except OSError:  # pragma: no cover - platform oddity: assume alive
        return True
    return True


FORMAT_VERSION = 1

#: The label under which :meth:`RunStore.ingest` records a dedupe key.
DEDUPE_LABEL = "ingest_fingerprint"


class StoreError(ValueError):
    """A malformed or version-incompatible run store."""


@dataclass(frozen=True)
class RunRecord:
    """One ingested run: identity, summary numbers, and full payloads.

    Args:
        run_id: the store-assigned stable id (``<kind>-<seq>``).
        kind: the run family (``"bench"``, ``"simulate"``, …) — series
            are compared *within* a kind, never across kinds.
        created_at: ISO-8601 UTC timestamp (the producer's, when it has
            one — bench trajectory entries keep their original stamp).
        labels: string key/values for filtering (mechanism, scale, …).
        values: the flat numeric summary — the only part regression
            detection and trend charts read.
        manifest: the run's provenance manifest, when one exists.
        metrics: a full metrics-registry snapshot
            (:meth:`~repro.obs.metrics.MetricsRegistry.as_dict`).
        trace_summary: per-phase timing rows from a span trace.
    """

    run_id: str
    kind: str
    created_at: str
    labels: Dict[str, str] = field(default_factory=dict)
    values: Dict[str, float] = field(default_factory=dict)
    manifest: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None
    trace_summary: Optional[List[Dict[str, Any]]] = None
    format_version: int = FORMAT_VERSION

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def registry_values(registry_dict: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten a metrics-registry snapshot into store-ready numbers.

    Counters and gauges keep their value under the series key;
    histograms expand to ``<series>/count``, ``/mean``, ``/p50``,
    ``/p95`` (bucket-interpolated) so latency distributions are
    regression-gateable without replaying raw observations.
    """
    values: Dict[str, float] = {}
    for series, state in registry_dict.items():
        kind = state.get("kind")
        if kind in ("counter", "gauge"):
            values[series] = float(state["value"])
        elif kind == "histogram":
            histogram = Histogram.from_dict(
                {k: v for k, v in state.items() if k != "kind"}
            )
            values[f"{series}/count"] = float(histogram.count)
            if histogram.count:
                values[f"{series}/mean"] = histogram.mean
                values[f"{series}/p50"] = float(histogram.percentile(50.0))
                values[f"{series}/p95"] = float(histogram.percentile(95.0))
    return values


def _utc_now() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _clean_values(values: Mapping[str, Any]) -> Dict[str, float]:
    """Validate and coerce the numeric summary (finite floats only)."""
    cleaned: Dict[str, float] = {}
    for name, value in values.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise StoreError(
                f"store values must be numbers; {name!r} is {type(value).__name__}"
            )
        number = float(value)
        if not math.isfinite(number):
            raise StoreError(f"store value {name!r} is not finite: {number}")
        cleaned[str(name)] = number
    return cleaned


class RunStore:
    """One on-disk run history (see module docstring for the layout).

    Args:
        root: the store directory; created (with parents) when absent.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.index_path = self.root / "index.jsonl"
        self._lock_path = self.root / ".lock"

    # -- locking ---------------------------------------------------------

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive inter-process lock for the append path.

        Where ``fcntl`` exists the lock is a plain ``flock`` on a
        sidecar file.  Elsewhere (or under ``REPRO_OBS_NO_FCNTL=1``) the
        fallback is an atomic lockfile: ``O_CREAT|O_EXCL`` creation is
        the acquisition, so exactly one process wins; losers spin with a
        short jittered sleep.  The previous fallback was a silent no-op,
        which let concurrent ingests interleave index lines and mint
        duplicate run ids — the stress test in
        ``tests/obs/test_store_locking.py`` hammers one store from 8
        processes down both paths.
        """
        if _use_fcntl():
            with self._lock_path.open("a") as handle:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            return
        self._acquire_lockfile()
        try:
            yield
        finally:
            self._release_lockfile()

    @property
    def _lockfile_path(self) -> Path:
        # Distinct from the flock sidecar: the flock file is opened in
        # append mode (existence is meaningless), the fallback lockfile's
        # very existence *is* the lock.
        return self.root / ".lockfile"

    def _acquire_lockfile(self, timeout: float = 30.0) -> None:
        """Win the ``O_CREAT|O_EXCL`` race, stealing stale locks.

        A lock is stale when its owner pid is dead, or when it is older
        than :data:`STALE_LOCK_SECONDS` (covers pid reuse and
        unreadable lockfiles).  Stealing is itself racy-safe: whoever
        loses the re-creation race after the unlink simply spins again.
        """
        deadline = time.monotonic() + timeout
        rng = random.Random()
        while True:
            try:
                descriptor = os.open(
                    self._lockfile_path,
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                self._steal_if_stale()
                if time.monotonic() >= deadline:
                    raise StoreError(
                        f"{self._lockfile_path}: could not acquire the store "
                        f"lock within {timeout:g}s; if no other process is "
                        f"ingesting, delete the stale lockfile"
                    )
                time.sleep(rng.uniform(0.001, 0.01))
                continue
            with os.fdopen(descriptor, "w") as handle:
                handle.write(f"{os.getpid()} {time.time():.3f}\n")
            return

    def _steal_if_stale(self) -> None:
        """Unlink the lockfile when its owner is provably gone."""
        try:
            raw = self._lockfile_path.read_text().split()
            owner = int(raw[0])
            written_at = float(raw[1])
        except (OSError, ValueError, IndexError):
            # Unreadable or half-written: fall back to the age check via
            # the file's mtime.
            owner = None
            try:
                written_at = self._lockfile_path.stat().st_mtime
            except OSError:
                return  # gone already — the next O_EXCL attempt decides
        stale = (
            (owner is not None and not _pid_alive(owner))
            or time.time() - written_at > STALE_LOCK_SECONDS
        )
        if stale:
            try:
                self._lockfile_path.unlink()
            except OSError:
                pass  # someone else stole it first; spin again

    def _release_lockfile(self) -> None:
        try:
            self._lockfile_path.unlink()
        except OSError:  # pragma: no cover - already stolen as stale
            pass

    # -- ingestion -------------------------------------------------------

    def ingest(
        self,
        kind: str,
        values: Mapping[str, Any],
        labels: Optional[Mapping[str, Any]] = None,
        manifest: Optional[Mapping[str, Any]] = None,
        metrics: Optional[Mapping[str, Any]] = None,
        trace_summary: Optional[List[Dict[str, Any]]] = None,
        created_at: Optional[str] = None,
        dedupe_key: Optional[str] = None,
    ) -> Tuple[RunRecord, bool]:
        """Append one run; returns ``(record, created)``.

        Args:
            kind: the run family (non-empty; no ``/``).
            values: flat numeric summary (finite numbers only).
            labels: optional string labels for filtering.
            manifest / metrics / trace_summary: full payloads, stored in
                the run's payload directory.
            created_at: producer timestamp; defaults to now (UTC).
            dedupe_key: when given, an existing run of this kind with
                the same key is returned instead of ingesting a
                duplicate (``created`` False) — how re-ingesting the
                same bench trajectory stays idempotent.

        Raises:
            StoreError: for an invalid kind/values or a corrupt index.
        """
        if not kind or "/" in kind:
            raise StoreError(f"invalid run kind {kind!r}")
        cleaned = _clean_values(values)
        label_map = {str(k): str(v) for k, v in (labels or {}).items()}
        if dedupe_key is not None:
            label_map[DEDUPE_LABEL] = dedupe_key
        with self._locked():
            entries = self._read_index()
            if dedupe_key is not None:
                for entry in entries:
                    if (
                        entry["kind"] == kind
                        and entry["labels"].get(DEDUPE_LABEL) == dedupe_key
                    ):
                        return self.load(entry["run_id"]), False
            run_id = f"{kind}-{len(entries) + 1:06d}"
            record = RunRecord(
                run_id=run_id,
                kind=kind,
                created_at=created_at or _utc_now(),
                labels=label_map,
                values=cleaned,
                manifest=dict(manifest) if manifest is not None else None,
                metrics=dict(metrics) if metrics is not None else None,
                trace_summary=trace_summary,
            )
            # Payload first, index line second: an index line always
            # points at a complete payload (a crash in between leaves an
            # unindexed payload dir that the next ingest overwrites).
            self._write_payload(record)
            self._append_index_line({
                "format_version": FORMAT_VERSION,
                "run_id": run_id,
                "kind": kind,
                "created_at": record.created_at,
                "labels": label_map,
                "values": cleaned,
            })
        return record, True

    def _payload_path(self, run_id: str) -> Path:
        return self.root / "runs" / run_id / "record.json"

    def _write_payload(self, record: RunRecord) -> None:
        from repro.io.atomic import atomic_write_text  # leaf-package rule

        atomic_write_text(
            self._payload_path(record.run_id),
            json.dumps(record.as_dict(), indent=2, sort_keys=True) + "\n",
        )

    def _append_index_line(self, entry: Dict[str, Any]) -> None:
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self.index_path.open("a") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    # -- queries ---------------------------------------------------------

    def _read_index(self) -> List[Dict[str, Any]]:
        if not self.index_path.exists():
            return []
        entries: List[Dict[str, Any]] = []
        lines = self.index_path.read_text().splitlines()
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines):
                    # Crash mid-append: the run was never indexed; skip.
                    continue
                raise StoreError(
                    f"{self.index_path}: corrupt index line {number}; the "
                    f"store is damaged mid-stream"
                ) from None
            if entry.get("format_version") != FORMAT_VERSION:
                raise StoreError(
                    f"{self.index_path}: index line {number} has "
                    f"format_version {entry.get('format_version')!r}, "
                    f"expected {FORMAT_VERSION}"
                )
            entries.append(entry)
        return entries

    def entries(
        self, kind: Optional[str] = None, **labels: str
    ) -> List[Dict[str, Any]]:
        """Index entries in ingestion order, filtered by kind and labels."""
        selected = []
        for entry in self._read_index():
            if kind is not None and entry["kind"] != kind:
                continue
            if any(entry["labels"].get(k) != str(v) for k, v in labels.items()):
                continue
            selected.append(entry)
        return selected

    def __len__(self) -> int:
        return len(self._read_index())

    def kinds(self) -> List[str]:
        """Distinct run kinds, in first-ingestion order."""
        seen: Dict[str, None] = {}
        for entry in self._read_index():
            seen.setdefault(entry["kind"], None)
        return list(seen)

    def value_names(self, kind: Optional[str] = None) -> List[str]:
        """Sorted names of every numeric value recorded under ``kind``."""
        names = set()
        for entry in self.entries(kind=kind):
            names.update(entry["values"])
        return sorted(names)

    def series(
        self, value_name: str, kind: Optional[str] = None, **labels: str
    ) -> List[Tuple[str, float]]:
        """``(run_id, value)`` history of one metric, ingestion order.

        Runs without the value are skipped (schemas may grow over time).
        """
        return [
            (entry["run_id"], float(entry["values"][value_name]))
            for entry in self.entries(kind=kind, **labels)
            if value_name in entry["values"]
        ]

    def latest(self, kind: Optional[str] = None) -> Optional[Dict[str, Any]]:
        """The most recently ingested index entry, or None when empty."""
        selected = self.entries(kind=kind)
        return selected[-1] if selected else None

    def load(self, run_id: str) -> RunRecord:
        """The full record for a run id.

        Raises:
            KeyError: for an unknown run id.
            StoreError: for a payload from an incompatible schema.
        """
        path = self._payload_path(run_id)
        if not path.exists():
            raise KeyError(f"run {run_id!r} not in store {self.root}")
        payload = json.loads(path.read_text())
        if payload.get("format_version") != FORMAT_VERSION:
            raise StoreError(
                f"{path}: payload format_version "
                f"{payload.get('format_version')!r}, expected {FORMAT_VERSION}"
            )
        return RunRecord.from_dict(payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunStore({str(self.root)!r}, {len(self)} runs)"


#: Numeric fields of a ``BENCH_selectors.json`` entry worth gating.
BENCH_VALUE_FIELDS = (
    "reference_ms_per_call",
    "vectorized_ms_per_call",
    "speedup",
    "mean_profit",
    "scalar_rounds_per_second",
    "batched_rounds_per_second",
    "sharded_rounds_per_second",
    "engine_speedup",
    "rounds_per_second",
    "wall_seconds",
    "peak_rss_mb",
    "churn_rounds_per_second",
    "baseline_rounds_per_second",
    "dynamics_overhead",
    "plain_rounds_per_second",
    "live_rounds_per_second",
    "obs_overhead",
    "simulate_rounds_per_second",
    "session_rounds_per_second",
    "session_overhead",
)


def ingest_bench_trajectory(
    store: RunStore, path: Union[str, Path], kind: str = "bench"
) -> List[RunRecord]:
    """Import shim: fold a ``BENCH_selectors.json`` trajectory into a store.

    Each trajectory entry becomes one run of ``kind`` (idempotently —
    entries are fingerprinted, so re-ingesting the same file is a
    no-op).  Entries carrying a ``bench`` field (e.g. the engine
    throughput bench) land under ``{kind}:{bench}`` so each bench keeps
    its own regression baseline.  Returns only the records created *by
    this call*.

    Raises:
        StoreError: if the file is not a JSON list of objects.
    """
    path = Path(path)
    try:
        trajectory = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise StoreError(f"{path}: not a JSON bench trajectory") from exc
    if not isinstance(trajectory, list) or not all(
        isinstance(entry, dict) for entry in trajectory
    ):
        raise StoreError(f"{path}: bench trajectory must be a list of objects")
    created: List[RunRecord] = []
    for entry in trajectory:
        fingerprint = hashlib.sha256(
            json.dumps(entry, sort_keys=True, default=repr).encode()
        ).hexdigest()[:12]
        values = {
            name: entry[name]
            for name in BENCH_VALUE_FIELDS
            if isinstance(entry.get(name), (int, float))
        }
        labels = {"source": path.name}
        for label in ("scale", "python", "numpy", "bench", "scenario"):
            if entry.get(label) is not None:
                labels[label] = str(entry[label])
        entry_kind = f"{kind}:{entry['bench']}" if entry.get("bench") else kind
        record, was_created = store.ingest(
            entry_kind,
            values,
            labels=labels,
            created_at=entry.get("timestamp"),
            dedupe_key=fingerprint,
        )
        if was_created:
            created.append(record)
    return created
