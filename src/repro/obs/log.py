"""Structured logging on stdlib ``logging``, with propagated context.

Every logger in the library hangs off the ``"repro"`` root
(:func:`get_logger`), so one :func:`configure_logging` call controls the
whole tree.  Log *context* — which run, which round, which mechanism —
travels via a :mod:`contextvars` variable rather than call arguments:
code that owns the scope binds it once (:func:`bind`) and every log line
emitted inside the scope carries it, including lines from layers that
know nothing about runs or rounds (the retry helper, the journal).

Two formatters render the same structured record:

- :class:`KeyValueFormatter` — human-oriented, ``level logger: message
  | key=value …`` (the default);
- :class:`JsonFormatter` — one JSON object per line for log shippers
  (``repro --log-json``).

Nothing here touches the simulation: logging is observability only, and
the default configuration (warnings and above, to stderr) leaves the
CLI's stdout output — tables, perf summaries — byte-identical.
"""

from __future__ import annotations

import contextvars
import json
import logging
import sys
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, TextIO

#: Root of the library's logger tree; every get_logger() name hangs off it.
ROOT_LOGGER_NAME = "repro"

#: Environment carriers for the logging mode, so subprocesses (the job
#: service's workers) inherit the parent's format and level instead of
#: silently reverting to key=value warnings.
LOG_JSON_ENV = "REPRO_LOG_JSON"
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: The ambient structured context attached to every log record.
_CONTEXT: contextvars.ContextVar[Dict[str, Any]] = contextvars.ContextVar(
    "repro_log_context", default={}
)

#: logging.LogRecord attributes that are plumbing, not user payload.
_RECORD_INTERNALS = frozenset(
    logging.LogRecord(
        name="", level=0, pathname="", lineno=0, msg="", args=(), exc_info=None
    ).__dict__
) | {"message", "asctime", "taskName"}


def get_logger(name: str = "") -> logging.Logger:
    """The library logger for ``name`` (e.g. ``"resilience.retry"``).

    >>> get_logger("selection.watchdog").name
    'repro.selection.watchdog'
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def current_context() -> Dict[str, Any]:
    """A copy of the ambient structured context (empty outside any bind)."""
    return dict(_CONTEXT.get())


@contextmanager
def bind(**fields: Any) -> Iterator[None]:
    """Attach ``fields`` to every log record emitted inside the block.

    Binds nest: inner fields shadow outer ones for the duration of the
    inner block only.  Context propagates through ordinary calls and
    ``asyncio`` tasks (contextvars semantics); it does *not* cross
    process boundaries — worker processes start with a clean context.
    """
    merged = {**_CONTEXT.get(), **fields}
    token = _CONTEXT.set(merged)
    try:
        yield
    finally:
        _CONTEXT.reset(token)


def _record_extras(record: logging.LogRecord) -> Dict[str, Any]:
    """Context fields + ``extra=`` fields carried by one record.

    ``extra=`` wins over ambient context on key collision — the call
    site is more specific than the scope.
    """
    fields = dict(getattr(record, "context", None) or {})
    for key, value in record.__dict__.items():
        if key not in _RECORD_INTERNALS and key != "context":
            fields[key] = value
    return fields


class _ContextFilter(logging.Filter):
    """Snapshots the ambient context onto each record at emit time."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.context = _CONTEXT.get()
        return True


class KeyValueFormatter(logging.Formatter):
    """``LEVEL logger: message | key=value key=value`` — for terminals."""

    def format(self, record: logging.LogRecord) -> str:
        base = f"{record.levelname} {record.name}: {record.getMessage()}"
        fields = _record_extras(record)
        if fields:
            rendered = " ".join(f"{k}={fields[k]}" for k in sorted(fields))
            base = f"{base} | {rendered}"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


class JsonFormatter(logging.Formatter):
    """One JSON object per line — for log shippers and ``jq``."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_record_extras(record))
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


def verbosity_to_level(verbosity: int = 0, quiet: bool = False) -> int:
    """Map CLI flags to a logging level.

    Default is warnings-only (existing stdout output stays clean);
    ``-v`` opens INFO, ``-vv`` DEBUG, ``--quiet`` narrows to ERROR.
    """
    if quiet:
        return logging.ERROR
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0,
    quiet: bool = False,
    json_output: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; returns the root logger.

    Idempotent: a previous configuration installed by this function is
    replaced, never stacked, so repeated CLI invocations in one process
    (tests, notebooks) do not duplicate log lines.  Logs go to *stderr*
    by default — stdout belongs to the CLI's tables and summaries.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs_handler = True
    handler.addFilter(_ContextFilter())
    handler.setFormatter(JsonFormatter() if json_output else KeyValueFormatter())
    root.addHandler(handler)
    root.setLevel(verbosity_to_level(verbosity, quiet))
    # The library's records stop here; the application root keeps its
    # own handlers for its own loggers.
    root.propagate = False
    return root


def logging_environment() -> Dict[str, str]:
    """The current logging mode as subprocess environment variables.

    Inspects the handler :func:`configure_logging` installed (format and
    level) so a parent can hand its exact mode to child processes — the
    supervisor merges this into every worker launch.  Returns an empty
    mapping when logging was never configured.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in root.handlers:
        if getattr(handler, "_repro_obs_handler", False):
            return {
                LOG_JSON_ENV: (
                    "1" if isinstance(handler.formatter, JsonFormatter) else "0"
                ),
                LOG_LEVEL_ENV: str(root.getEffectiveLevel()),
            }
    return {}


def configure_logging_from_env(
    environ: Optional[Dict[str, str]] = None,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Configure logging from :func:`logging_environment` variables.

    The subprocess half of log-mode propagation: workers call this at
    startup so their per-attempt ``worker.log`` lines match the parent
    server's format (``--log-json``) and level.  Absent or malformed
    variables fall back to the defaults (key=value, warnings only).
    """
    import os

    environ = os.environ if environ is None else environ
    json_output = environ.get(LOG_JSON_ENV, "0") in ("1", "true", "yes")
    try:
        level = int(environ.get(LOG_LEVEL_ENV, str(logging.WARNING)))
    except ValueError:
        level = logging.WARNING
    root = configure_logging(json_output=json_output, stream=stream)
    root.setLevel(level)
    return root
