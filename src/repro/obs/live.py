"""The live operational layer: Prometheus exposition + job progress.

The observatory (PRs 3–4) answers *what happened*; this module answers
*what is happening*.  Three pieces, all deterministic and stdlib-only:

- :func:`render_prometheus` / :func:`parse_prometheus` — the registry's
  instruments as `Prometheus text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_ and
  back.  Rendering is purely a function of the registry's state: no
  timestamps, sorted series, deterministic number formatting — two
  scrapes of an idle server are byte-identical (pinned by
  ``tests/server/test_live_ops.py``).
- :class:`JobProgress` / :class:`ProgressWriter` — the per-job progress
  file contract.  The worker's round observer atomically rewrites
  ``<job_dir>/progress.json`` after every round (current round, spend
  against budget, completeness, EWMA round time and the ETA derived
  from it); the server reads it tolerantly at scrape time and turns it
  into per-job gauges.  A torn or missing file reads as ``None`` —
  progress is advisory, never load-bearing.
- :func:`sparkline` / :func:`render_top_frame` — the terminal dashboard
  behind ``repro jobs top``: one line per job over the parsed
  ``/metrics`` gauges, with a sparkline of each job's completeness
  history.

Nothing here touches the simulation: a run with progress reporting
enabled is bit-identical to one without (the observer only *reads* the
round records).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.obs.metrics import Histogram, MetricsRegistry, _parse_series_key

#: The progress file's name inside a job directory.
PROGRESS_FILENAME = "progress.json"

#: EWMA weight on history (matches the service's runtime estimator).
EWMA_KEEP = 0.7

#: HELP strings for the series the service exposes (rendering skips
#: HELP for names not listed here — unknown series are still valid).
METRIC_HELP: Dict[str, str] = {
    "repro_queue_depth": "Jobs waiting in the bounded admission queue.",
    "repro_running_jobs": "Jobs currently holding a worker slot.",
    "repro_jobs": "Jobs in the journal by lifecycle state.",
    "repro_submissions_total": "Submission outcomes since process start.",
    "repro_shed_jobs_total": "Queued jobs shed under memory pressure.",
    "repro_crash_retries_total": "Worker crashes that triggered a retry.",
    "repro_attempt_seconds": "Wall-clock duration of worker attempts.",
    "repro_job_round": "Last completed round of a running job.",
    "repro_job_rounds_total": "Configured round count of a running job.",
    "repro_job_spend": "Cumulative payout of a running job.",
    "repro_job_budget": "Configured budget of a running job.",
    "repro_job_completeness": "Fraction of tasks completed by a running job.",
    "repro_job_eta_seconds": "EWMA-estimated seconds to finish a running job.",
}


def format_number(value: Union[int, float]) -> str:
    """A float rendered the same way every time (exposition-stable).

    Integral values print as integers (``3``, not ``3.0``); everything
    else prints via ``repr``, which round-trips exactly.
    """
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - no NaN series exist
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (version 0.0.4).

    Series are grouped by metric name with one ``# TYPE`` (and, when
    known, ``# HELP``) line per name; histograms expand into cumulative
    ``_bucket{le=...}`` lines plus ``_sum`` and ``_count``.  No
    timestamps are emitted, so the output is a pure function of the
    registry's state.
    """
    grouped: Dict[str, List[tuple]] = {}
    for key, instrument in registry.series().items():
        name, label_key = _parse_series_key(key)
        grouped.setdefault(name, []).append((dict(label_key), instrument))

    lines: List[str] = []
    for name in sorted(grouped):
        entries = grouped[name]
        kind = entries[0][1].kind
        help_text = METRIC_HELP.get(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, instrument in entries:
            if kind == "histogram":
                lines.extend(_render_histogram(name, labels, instrument))
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{format_number(instrument.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def _render_histogram(
    name: str, labels: Mapping[str, str], histogram: Histogram
) -> List[str]:
    lines = []
    cumulative = 0
    for bound, count in zip(histogram.bounds, histogram.bucket_counts):
        cumulative += count
        le = _render_labels(labels, extra=f'le="{format_number(bound)}"')
        lines.append(f"{name}_bucket{le} {cumulative}")
    inf = _render_labels(labels, extra='le="+Inf"')
    lines.append(f"{name}_bucket{inf} {histogram.count}")
    lines.append(
        f"{name}_sum{_render_labels(labels)} {format_number(histogram.sum)}"
    )
    lines.append(f"{name}_count{_render_labels(labels)} {histogram.count}")
    return lines


def parse_prometheus(text: str) -> Dict[str, float]:
    """Exposition text back into ``{series-with-labels: value}``.

    The inverse ``repro jobs top`` needs: comments and blank lines are
    skipped, label strings are kept verbatim (quoted form), values
    parse as floats.  Malformed lines raise ``ValueError`` — a scrape
    either parses or the dashboard should say so.
    """
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, raw = line.rpartition(" ")
        if not series:
            raise ValueError(f"malformed exposition line: {line!r}")
        values[series] = float(raw)
    return values


def metric_value(
    parsed: Mapping[str, float], name: str, **labels: Any
) -> Optional[float]:
    """Look one series up in :func:`parse_prometheus` output.

    Label order does not matter; returns None when absent.
    """
    wanted = {str(k): str(v) for k, v in labels.items()}
    prefix = name + "{"
    for series, value in parsed.items():
        if series == name and not wanted:
            return value
        if not series.startswith(prefix) or not series.endswith("}"):
            continue
        rendered = series[len(prefix):-1]
        found = {}
        for part in rendered.split(","):
            key, _, val = part.partition("=")
            found[key] = val.strip('"')
        if found == wanted:
            return value
    return None


# -- the per-job progress file ------------------------------------------


@dataclass(frozen=True)
class JobProgress:
    """One atomic snapshot of a running job's trajectory.

    Written by the worker after every completed round; read by the
    server at scrape time and by ``GET /jobs/{id}/progress``.
    """

    job_id: str
    round_no: int
    rounds_total: int
    spend: float
    budget: float
    completeness: float
    eta_seconds: float
    round_seconds_ewma: float
    attempt: int
    updated_at: float

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def write(self, job_dir: Union[str, Path]) -> Path:
        """Atomically (re)write ``<job_dir>/progress.json``."""
        from repro.io.atomic import atomic_write_text

        path = Path(job_dir) / PROGRESS_FILENAME
        atomic_write_text(
            path, json.dumps(self.as_dict(), sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def read(cls, job_dir: Union[str, Path]) -> Optional["JobProgress"]:
        """The job's progress snapshot, or None.

        Missing, torn, or wrong-shaped files all read as None: progress
        is advisory telemetry, and a scrape must never fail because a
        worker is mid-write on a filesystem without atomic rename.
        """
        path = Path(job_dir) / PROGRESS_FILENAME
        try:
            payload = json.loads(path.read_text())
            return cls(
                job_id=str(payload["job_id"]),
                round_no=int(payload["round_no"]),
                rounds_total=int(payload["rounds_total"]),
                spend=float(payload["spend"]),
                budget=float(payload["budget"]),
                completeness=float(payload["completeness"]),
                eta_seconds=float(payload["eta_seconds"]),
                round_seconds_ewma=float(payload["round_seconds_ewma"]),
                attempt=int(payload["attempt"]),
                updated_at=float(payload["updated_at"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None


class ProgressWriter:
    """A round observer that keeps ``progress.json`` current.

    Args:
        job_dir: the job directory (the file lands next to events.jsonl).
        job_id: the job's id (embedded in every snapshot).
        rounds_total: the configured round count.
        budget: the configured budget.
        n_tasks: the world's initial task count (open-world arrivals
            discovered in the round records are added as they appear).
        attempt: the 1-based attempt number.
        clock: injectable wall clock (tests pin it).

    Spend and completeness are *cumulative across attempts*: a resumed
    worker replays earlier rounds deterministically, and the observer
    sees every replayed record, so the accumulators rebuild themselves.
    """

    def __init__(
        self,
        job_dir: Union[str, Path],
        job_id: str,
        rounds_total: int,
        budget: float,
        n_tasks: int,
        attempt: int = 1,
        clock=time.time,
    ):
        self.job_dir = Path(job_dir)
        self.job_id = job_id
        self.rounds_total = int(rounds_total)
        self.budget = float(budget)
        self.attempt = int(attempt)
        self.clock = clock
        self._spend = 0.0
        self._completed: set = set()
        self._known_tasks = max(1, int(n_tasks))
        self._ewma: Optional[float] = None
        self._last_mark = perf_counter()
        self.last: Optional[JobProgress] = None

    def __call__(self, record) -> None:
        now = perf_counter()
        round_seconds = now - self._last_mark
        self._last_mark = now
        if self._ewma is None:
            self._ewma = round_seconds
        else:
            self._ewma = (
                EWMA_KEEP * self._ewma + (1.0 - EWMA_KEEP) * round_seconds
            )
        self._spend += record.total_paid
        self._completed.update(record.completed_task_ids)
        for event in record.dynamics:
            if getattr(event, "kind", "") == "task_published":
                self._known_tasks += 1
        remaining = max(0, self.rounds_total - record.round_no)
        self.last = JobProgress(
            job_id=self.job_id,
            round_no=record.round_no,
            rounds_total=self.rounds_total,
            spend=self._spend,
            budget=self.budget,
            completeness=len(self._completed) / self._known_tasks,
            eta_seconds=self._ewma * remaining,
            round_seconds_ewma=self._ewma,
            attempt=self.attempt,
            updated_at=self.clock(),
        )
        self.last.write(self.job_dir)


# -- the terminal dashboard ---------------------------------------------

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """``values`` as a fixed-width unicode sparkline (latest on the right).

    >>> sparkline([0.0, 0.5, 1.0], width=3)
    '▁▄█'
    """
    if not values:
        return " " * width
    tail = list(values)[-width:]
    low = min(tail)
    high = max(tail)
    span = high - low
    chars = []
    for value in tail:
        if span <= 0:
            chars.append(_SPARK_CHARS[0] if high <= 0 else _SPARK_CHARS[-1])
        else:
            index = int((value - low) / span * (len(_SPARK_CHARS) - 1))
            chars.append(_SPARK_CHARS[index])
    return "".join(chars).rjust(width)


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, rest = divmod(int(round(seconds)), 60)
    return f"{minutes}m{rest:02d}s"


def render_top_frame(
    parsed: Mapping[str, float],
    jobs: Iterable[Mapping[str, Any]],
    history: Mapping[str, Sequence[float]],
    width: int = 24,
) -> str:
    """One ``repro jobs top`` frame over parsed ``/metrics`` + job list.

    Args:
        parsed: :func:`parse_prometheus` output of one scrape.
        jobs: the job documents from ``GET /jobs``.
        history: per-job completeness history (the caller accumulates
            it across frames; the newest sample is drawn rightmost).
    """
    jobs = list(jobs)
    by_state: Dict[str, int] = {}
    for job in jobs:
        by_state[job["state"]] = by_state.get(job["state"], 0) + 1
    queued = metric_value(parsed, "repro_queue_depth")
    running = metric_value(parsed, "repro_running_jobs")
    states = " ".join(f"{s}={by_state[s]}" for s in sorted(by_state)) or "none"
    lines = [
        f"queue={format_number(queued or 0)} "
        f"running={format_number(running or 0)} jobs: {states}",
        f"{'job':<10} {'state':<9} {'round':>11} {'spend':>16} "
        f"{'done%':>6} {'eta':>7}  progress",
    ]
    for job in jobs:
        job_id = job["job_id"]
        round_no = metric_value(parsed, "repro_job_round", job=job_id)
        rounds_total = metric_value(
            parsed, "repro_job_rounds_total", job=job_id
        )
        spend = metric_value(parsed, "repro_job_spend", job=job_id)
        budget = metric_value(parsed, "repro_job_budget", job=job_id)
        completeness = metric_value(
            parsed, "repro_job_completeness", job=job_id
        )
        eta = metric_value(parsed, "repro_job_eta_seconds", job=job_id)
        if round_no is None:
            rounds = "-"
            spend_col = "-"
            done = "-"
        else:
            rounds = (
                f"{format_number(round_no)}/{format_number(rounds_total or 0)}"
            )
            spend_col = f"{spend or 0.0:.0f}/{budget or 0.0:.0f}"
            done = f"{100.0 * (completeness or 0.0):.1f}"
        lines.append(
            f"{job_id:<10} {job['state']:<9} {rounds:>11} {spend_col:>16} "
            f"{done:>6} {_fmt_eta(eta) if round_no is not None else '-':>7}  "
            f"{sparkline(history.get(job_id, ()), width=width)}"
        )
    return "\n".join(lines)


def progress_gauges(
    registry: MetricsRegistry, progress: JobProgress
) -> None:
    """Set one running job's progress gauges on ``registry``."""
    job = progress.job_id
    registry.gauge("repro_job_round", job=job).set(progress.round_no)
    registry.gauge("repro_job_rounds_total", job=job).set(
        progress.rounds_total
    )
    registry.gauge("repro_job_spend", job=job).set(progress.spend)
    registry.gauge("repro_job_budget", job=job).set(progress.budget)
    registry.gauge("repro_job_completeness", job=job).set(
        progress.completeness
    )
    registry.gauge("repro_job_eta_seconds", job=job).set(
        progress.eta_seconds
    )


__all__ = [
    "JobProgress",
    "METRIC_HELP",
    "PROGRESS_FILENAME",
    "ProgressWriter",
    "format_number",
    "metric_value",
    "parse_prometheus",
    "progress_gauges",
    "render_prometheus",
    "render_top_frame",
    "sparkline",
]
