"""A sampling resource profiler: RSS, CPU time, and GC pressure over time.

Span tracing answers *where wall-clock time goes*; this module answers
*what the process was doing to the machine* while it went there.  A
background daemon thread wakes every ``interval`` seconds and records:

- resident set size (``/proc/self/statm`` on Linux; ``getrusage`` peak
  as the portable fallback);
- cumulative process CPU time (:func:`time.process_time`);
- cumulative GC collections (:func:`gc.get_stats`);
- the **active span name** read from the run's tracer
  (:attr:`~repro.obs.trace.SpanTracer.current_span_name`) — which is
  how a memory ramp gets attributed to ``select`` rather than "somewhere
  in the run".

The same zero-cost-when-off contract as tracing: the default
:data:`NULL_PROFILER` starts no thread and records nothing, and a *real*
profiler only ever reads clocks and ``/proc`` — never the simulation's
random streams — so profiled runs are bit-identical to unprofiled ones
(pinned by ``tests/integration/test_observatory.py``).  Overhead of the
sampler itself is one small file read per interval on another thread;
measured on the perf-smoke workload it is < 5 % end to end (see
docs/architecture.md "Observatory").

:meth:`ResourceProfiler.fold_into` lands the samples in a metrics
registry as ``process_*`` series, so profiles ride the same store /
regression / dashboard path as every other metric.
"""

from __future__ import annotations

import gc
import os
import threading
from dataclasses import dataclass
from time import perf_counter, process_time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover - non-POSIX
    _PAGE_SIZE = 4096


def read_rss_bytes() -> int:
    """The process's current resident set size, best effort (0 if unknown).

    Linux reads ``/proc/self/statm`` (field 2 is resident pages); other
    POSIX systems fall back to the ``getrusage`` *peak* RSS, which is
    monotone but still useful for the peak-memory gauge.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - platform without getrusage
        return 0


def _gc_collections() -> int:
    """Total GC collections across all generations since interpreter start."""
    return sum(stat.get("collections", 0) for stat in gc.get_stats())


@dataclass(frozen=True)
class ResourceSample:
    """One observation of the process, ``elapsed`` seconds into the profile."""

    elapsed: float
    rss_bytes: int
    cpu_seconds: float
    gc_collections: int
    span: str


class _NullProfiler:
    """The do-nothing default: no thread, no samples, no cost."""

    enabled = False
    samples: Tuple[ResourceSample, ...] = ()

    def start(self) -> "_NullProfiler":
        return self

    def stop(self) -> "_NullProfiler":
        return self

    def __enter__(self) -> "_NullProfiler":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def fold_into(self, registry: MetricsRegistry) -> MetricsRegistry:
        return registry

    def summary(self) -> Dict[str, Any]:
        return {"samples": 0}


#: The shared no-op profiler (stateless, safe to share everywhere).
NULL_PROFILER = _NullProfiler()


class ResourceProfiler:
    """Samples process resources on a background thread (see module doc).

    Args:
        interval: seconds between samples (default 20 Hz).
        tracer: the run's span tracer; samples are attributed to its
            ``current_span_name``.  The default no-op tracer attributes
            everything to ``""`` (rendered as ``untraced``).

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    Restarting a stopped profiler continues appending samples.
    """

    enabled = True

    def __init__(self, interval: float = 0.05, tracer=None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.samples: List[ResourceSample] = []
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._epoch: Optional[float] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ResourceProfiler":
        """Begin sampling (idempotent while already running)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop_event.clear()
        if self._epoch is None:
            self._epoch = perf_counter()
        self._sample()  # a baseline sample, so deltas have an anchor
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "ResourceProfiler":
        """Stop sampling; records one final sample (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is None:
            return self
        self._stop_event.set()
        thread.join(timeout=max(1.0, 10 * self.interval))
        self._sample()
        return self

    def __enter__(self) -> "ResourceProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self._sample()

    def _sample(self) -> None:
        tracer = self.tracer
        self.samples.append(ResourceSample(
            elapsed=perf_counter() - (self._epoch or perf_counter()),
            rss_bytes=read_rss_bytes(),
            cpu_seconds=process_time(),
            gc_collections=_gc_collections(),
            span=getattr(tracer, "current_span_name", ""),
        ))

    # -- aggregation -----------------------------------------------------

    def fold_into(self, registry: MetricsRegistry) -> MetricsRegistry:
        """Land the profile in ``registry`` as ``process_*`` series.

        Series written (all deltas are profile-relative, so merging two
        runs' registries adds their resource usage the way counters
        should): ``process_rss_peak_bytes`` / ``process_rss_last_bytes``
        gauges, ``process_cpu_seconds_total`` and
        ``process_gc_collections_total`` counters,
        ``process_samples_total`` overall and per attributed span
        (``process_span_samples_total{span=...}``).
        """
        if not self.samples:
            return registry
        first, last = self.samples[0], self.samples[-1]
        registry.gauge("process_rss_peak_bytes").set(
            max(sample.rss_bytes for sample in self.samples)
        )
        registry.gauge("process_rss_last_bytes").set(last.rss_bytes)
        registry.counter("process_cpu_seconds_total").inc(
            max(0.0, last.cpu_seconds - first.cpu_seconds)
        )
        registry.counter("process_gc_collections_total").inc(
            max(0, last.gc_collections - first.gc_collections)
        )
        registry.counter("process_samples_total").inc(len(self.samples))
        for span, count in sorted(self._span_counts().items()):
            registry.counter("process_span_samples_total", span=span).inc(count)
        return registry

    def _span_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for sample in self.samples:
            span = sample.span or "untraced"
            counts[span] = counts.get(span, 0) + 1
        return counts

    def summary(self) -> Dict[str, Any]:
        """A printable digest: sample count, peak RSS, CPU, GC, top spans."""
        if not self.samples:
            return {"samples": 0}
        first, last = self.samples[0], self.samples[-1]
        top_spans = sorted(
            self._span_counts().items(), key=lambda item: (-item[1], item[0])
        )
        return {
            "samples": len(self.samples),
            "duration_seconds": last.elapsed - first.elapsed,
            "rss_peak_bytes": max(s.rss_bytes for s in self.samples),
            "cpu_seconds": max(0.0, last.cpu_seconds - first.cpu_seconds),
            "gc_collections": max(0, last.gc_collections - first.gc_collections),
            "span_samples": dict(top_spans),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResourceProfiler(interval={self.interval}, "
            f"samples={len(self.samples)})"
        )
