"""Observability: structured logging, metrics, span tracing, manifests.

The subsystem every serving stack grows eventually, grown deliberately:

- :mod:`repro.obs.log` — structured logging on stdlib ``logging`` with
  contextvars-propagated run/round/mechanism context;
- :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms with label sets (the generalisation of
  :class:`~repro.simulation.perf.PerfStats`);
- :mod:`repro.obs.trace` — run → round → phase span tracing, exported
  as JSONL or Chrome trace events (Perfetto-loadable), with a zero-cost
  no-op tracer as the default;
- :mod:`repro.obs.manifest` — atomic run manifests recording config
  fingerprint, seed, git revision, interpreter, and host;
- :mod:`repro.obs.store` — the run observatory: an append-only,
  file-locked, queryable store of manifests + metric summaries + trace
  summaries across runs;
- :mod:`repro.obs.profiler` — a sampling resource profiler (RSS, CPU,
  GC) attributing samples to the active trace span, no-op by default;
- :mod:`repro.obs.regress` — baseline-window perf-regression detection
  (robust MAD z-scores with a relative-threshold fallback) with typed
  verdicts;
- :mod:`repro.obs.report` — terminal and self-contained single-file
  HTML dashboards over the store.

Everything here observes; nothing decides.  The invariant the tests pin:
a run with full observability enabled produces bit-identical simulated
numbers to a run with none.
"""

from repro.obs.live import (
    JobProgress,
    ProgressWriter,
    format_number,
    metric_value,
    parse_prometheus,
    progress_gauges,
    render_prometheus,
    render_top_frame,
    sparkline,
)
from repro.obs.log import (
    JsonFormatter,
    KeyValueFormatter,
    LOG_JSON_ENV,
    LOG_LEVEL_ENV,
    bind,
    configure_logging,
    configure_logging_from_env,
    current_context,
    get_logger,
    logging_environment,
    verbosity_to_level,
)
from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    load_manifest,
    manifest_path_for,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    series_key,
)
from repro.obs.profiler import (
    NULL_PROFILER,
    ResourceProfiler,
    ResourceSample,
    read_rss_bytes,
)
from repro.obs.regress import (
    DEFAULT_THRESHOLDS,
    MetricSpec,
    RegressionReport,
    Thresholds,
    Verdict,
    default_spec,
    detect,
    regress_series,
    regress_store,
)
from repro.obs.report import (
    render_html_dashboard,
    render_terminal_dashboard,
    write_html_dashboard,
)
from repro.obs.store import (
    RunRecord,
    RunStore,
    StoreError,
    ingest_bench_trajectory,
    registry_values,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    PhaseSummary,
    SpanRecord,
    SpanTracer,
    TraceContext,
    TraceShardWriter,
    load_trace,
    merge_traces,
    read_trace_shard,
    summarize,
    trace_id_for_job,
    write_merged_trace,
)

__all__ = [
    "JobProgress",
    "ProgressWriter",
    "format_number",
    "metric_value",
    "parse_prometheus",
    "progress_gauges",
    "render_prometheus",
    "render_top_frame",
    "sparkline",
    "JsonFormatter",
    "KeyValueFormatter",
    "LOG_JSON_ENV",
    "LOG_LEVEL_ENV",
    "bind",
    "configure_logging",
    "configure_logging_from_env",
    "current_context",
    "get_logger",
    "logging_environment",
    "verbosity_to_level",
    "RunManifest",
    "build_manifest",
    "load_manifest",
    "manifest_path_for",
    "write_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "series_key",
    "NULL_PROFILER",
    "ResourceProfiler",
    "ResourceSample",
    "read_rss_bytes",
    "DEFAULT_THRESHOLDS",
    "MetricSpec",
    "RegressionReport",
    "Thresholds",
    "Verdict",
    "default_spec",
    "detect",
    "regress_series",
    "regress_store",
    "render_html_dashboard",
    "render_terminal_dashboard",
    "write_html_dashboard",
    "RunRecord",
    "RunStore",
    "StoreError",
    "ingest_bench_trajectory",
    "registry_values",
    "NULL_TRACER",
    "NullTracer",
    "PhaseSummary",
    "SpanRecord",
    "SpanTracer",
    "TraceContext",
    "TraceShardWriter",
    "load_trace",
    "merge_traces",
    "read_trace_shard",
    "summarize",
    "trace_id_for_job",
    "write_merged_trace",
]
