"""Observability: structured logging, metrics, span tracing, manifests.

The subsystem every serving stack grows eventually, grown deliberately:

- :mod:`repro.obs.log` — structured logging on stdlib ``logging`` with
  contextvars-propagated run/round/mechanism context;
- :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms with label sets (the generalisation of
  :class:`~repro.simulation.perf.PerfStats`);
- :mod:`repro.obs.trace` — run → round → phase span tracing, exported
  as JSONL or Chrome trace events (Perfetto-loadable), with a zero-cost
  no-op tracer as the default;
- :mod:`repro.obs.manifest` — atomic run manifests recording config
  fingerprint, seed, git revision, interpreter, and host.

Everything here observes; nothing decides.  The invariant the tests pin:
a run with full observability enabled produces bit-identical simulated
numbers to a run with none.
"""

from repro.obs.log import (
    JsonFormatter,
    KeyValueFormatter,
    bind,
    configure_logging,
    current_context,
    get_logger,
    verbosity_to_level,
)
from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    load_manifest,
    manifest_path_for,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    series_key,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    PhaseSummary,
    SpanRecord,
    SpanTracer,
    load_trace,
    summarize,
)

__all__ = [
    "JsonFormatter",
    "KeyValueFormatter",
    "bind",
    "configure_logging",
    "current_context",
    "get_logger",
    "verbosity_to_level",
    "RunManifest",
    "build_manifest",
    "load_manifest",
    "manifest_path_for",
    "write_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "series_key",
    "NULL_TRACER",
    "NullTracer",
    "PhaseSummary",
    "SpanRecord",
    "SpanTracer",
    "load_trace",
    "summarize",
]
