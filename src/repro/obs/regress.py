"""Baseline-window regression detection over run-store series.

The verdict a CI job needs is not "what is the number" but "is the
latest number *out of family*".  Following the rolling-baseline pattern
(score the candidate against a window of recent history, not a single
golden snapshot), each metric's latest value is compared against the
previous ``window`` runs of the same kind:

- **Robust z-score** (the primary method, windows of >= ``min_window``
  with spread): deviation is measured in units of scaled MAD
  (``1.4826 * median(|x - median|)``), which one historical outlier
  cannot inflate the way a standard deviation can.
- **Relative threshold** (the fallback for short windows or zero MAD,
  i.e. a bit-identical history): deviation as a fraction of the
  baseline median.

Both produce a *signed* deviation oriented by the metric's
:class:`MetricSpec` direction — for ``higher-is-worse`` metrics
(latencies, bytes, rejection counts) only increases regress; for
``lower-is-worse`` ones (speedups, coverage) only decreases do;
``two-sided`` flags any drift (the default for unrecognised series).

Verdicts are typed (:class:`Verdict`: ok / warn / regressed / skipped,
with the evidence inline) and roll up into a :class:`RegressionReport`
whose :meth:`~RegressionReport.exit_code` is what ``repro obs regress``
returns — CI fails on ``regressed`` unless ``--warn-only``.
"""

from __future__ import annotations

import dataclasses
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.store import RunStore

#: Consistency constant: scaled MAD estimates sigma for normal data.
MAD_SCALE = 1.4826

#: Verdict statuses, mildest first (index = severity).
STATUSES = ("skipped", "ok", "warn", "regressed")


@dataclass(frozen=True)
class MetricSpec:
    """How one metric regresses.

    Args:
        name: the store value name.
        direction: ``higher-is-worse`` | ``lower-is-worse`` | ``two-sided``.
    """

    name: str
    direction: str = "two-sided"

    def __post_init__(self) -> None:
        if self.direction not in ("higher-is-worse", "lower-is-worse", "two-sided"):
            raise ValueError(f"unknown direction {self.direction!r}")


@dataclass(frozen=True)
class Thresholds:
    """Detection knobs: z-scores for the MAD method, fractions for relative.

    Defaults are deliberately loose (z >= 6, +50 % relative) — a perf
    gate that cries wolf gets disabled; a 2x latency regression clears
    both bars by a wide margin.
    """

    z_warn: float = 3.5
    z_fail: float = 6.0
    rel_warn: float = 0.20
    rel_fail: float = 0.50
    min_window: int = 4

    def __post_init__(self) -> None:
        if not (0 < self.z_warn <= self.z_fail):
            raise ValueError(f"need 0 < z_warn <= z_fail, got {self}")
        if not (0 < self.rel_warn <= self.rel_fail):
            raise ValueError(f"need 0 < rel_warn <= rel_fail, got {self}")
        if self.min_window < 1:
            raise ValueError(f"min_window must be >= 1, got {self.min_window}")


DEFAULT_THRESHOLDS = Thresholds()


@dataclass(frozen=True)
class Verdict:
    """One metric's regression verdict, with its evidence.

    ``deviation`` is the signed score in the method's units (MAD-z or
    baseline fraction); positive means "worse" under the spec's
    direction (absolute drift for two-sided specs).
    """

    metric: str
    status: str
    direction: str
    method: str
    candidate: Optional[float]
    baseline: Tuple[float, ...]
    baseline_median: Optional[float]
    deviation: float
    threshold: float
    evidence: str
    kind: Optional[str] = None

    @property
    def severity(self) -> int:
        return STATUSES.index(self.status)

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def _skipped(spec: MetricSpec, reason: str, kind: Optional[str]) -> Verdict:
    return Verdict(
        metric=spec.name, status="skipped", direction=spec.direction,
        method="insufficient-data", candidate=None, baseline=(),
        baseline_median=None, deviation=0.0, threshold=0.0,
        evidence=reason, kind=kind,
    )


def _oriented(raw: float, direction: str) -> float:
    """Signed deviation where positive always means "worse"."""
    if direction == "higher-is-worse":
        return raw
    if direction == "lower-is-worse":
        return -raw
    return abs(raw)


def detect(
    baseline: Sequence[float],
    candidate: float,
    spec: MetricSpec,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
    kind: Optional[str] = None,
) -> Verdict:
    """Score ``candidate`` against a baseline window (see module doc).

    Raises:
        ValueError: for an empty baseline (callers use
            :func:`regress_series`, which emits a ``skipped`` verdict
            instead of calling this).
    """
    values = [float(v) for v in baseline]
    if not values:
        raise ValueError(f"{spec.name}: cannot detect against an empty baseline")
    median = statistics.median(values)
    mad = statistics.median(abs(v - median) for v in values)
    if len(values) >= thresholds.min_window and mad > 0:
        method = "mad-z"
        deviation = _oriented((candidate - median) / (MAD_SCALE * mad), spec.direction)
        warn_at, fail_at = thresholds.z_warn, thresholds.z_fail
        unit = "z"
    else:
        # Short window, or a bit-identical history (MAD 0): a z-score is
        # undefined or absurdly sensitive, so fall back to relative drift.
        method = "relative"
        scale = max(abs(median), 1e-12)
        deviation = _oriented((candidate - median) / scale, spec.direction)
        warn_at, fail_at = thresholds.rel_warn, thresholds.rel_fail
        unit = "rel"
    if deviation >= fail_at:
        status, threshold = "regressed", fail_at
    elif deviation >= warn_at:
        status, threshold = "warn", warn_at
    else:
        status, threshold = "ok", warn_at
    evidence = (
        f"candidate {candidate:.6g} vs baseline median {median:.6g} "
        f"(n={len(values)}, MAD {mad:.3g}): {unit}={deviation:+.2f} "
        f"[warn >= {warn_at:g}, fail >= {fail_at:g}, {spec.direction}]"
    )
    return Verdict(
        metric=spec.name, status=status, direction=spec.direction,
        method=method, candidate=float(candidate), baseline=tuple(values),
        baseline_median=median, deviation=deviation, threshold=threshold,
        evidence=evidence, kind=kind,
    )


def regress_series(
    values: Sequence[float],
    spec: MetricSpec,
    window: int = 5,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
    kind: Optional[str] = None,
) -> Verdict:
    """Latest value vs the up-to-``window`` runs before it.

    Raises:
        ValueError: for a non-positive window.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    # One baseline point is not evidence (any sparse series would flag on
    # its second appearance); require two before issuing verdicts.
    if len(values) < 3:
        return _skipped(
            spec,
            f"needs >= 3 runs (2 baseline) to compare, series has {len(values)}",
            kind,
        )
    candidate = float(values[-1])
    baseline = [float(v) for v in values[-(window + 1):-1]]
    return detect(baseline, candidate, spec, thresholds, kind=kind)


#: Direction heuristics for store series the caller gave no spec for.
_LOWER_IS_WORSE_HINTS = (
    "speedup", "coverage", "completeness", "hit_rate", "profit", "welfare",
    "per_second",
)
_HIGHER_IS_WORSE_SUFFIXES = (
    "_ms_per_call", "_seconds", "_seconds_total", "_bytes", "/mean",
    "/p50", "/p95", "_fallbacks_total",
)
_HIGHER_IS_WORSE_HINTS = ("rejected", "rss", "gc_collections")


def default_spec(name: str) -> MetricSpec:
    """A direction guess for an unrecognised series name.

    Latency/size-shaped names regress upward, quality-shaped names
    regress downward, anything else is two-sided drift detection.
    """
    lowered = name.lower()
    if any(hint in lowered for hint in _LOWER_IS_WORSE_HINTS):
        return MetricSpec(name, "lower-is-worse")
    if lowered.endswith(_HIGHER_IS_WORSE_SUFFIXES) or any(
        hint in lowered for hint in _HIGHER_IS_WORSE_HINTS
    ):
        return MetricSpec(name, "higher-is-worse")
    return MetricSpec(name, "two-sided")


#: Curated specs for the perf-smoke bench trajectories.
BENCH_SPECS: Dict[str, MetricSpec] = {
    "reference_ms_per_call": MetricSpec("reference_ms_per_call", "higher-is-worse"),
    "vectorized_ms_per_call": MetricSpec("vectorized_ms_per_call", "higher-is-worse"),
    "speedup": MetricSpec("speedup", "lower-is-worse"),
    "mean_profit": MetricSpec("mean_profit", "two-sided"),
    "scalar_rounds_per_second": MetricSpec(
        "scalar_rounds_per_second", "lower-is-worse"
    ),
    "batched_rounds_per_second": MetricSpec(
        "batched_rounds_per_second", "lower-is-worse"
    ),
    "engine_speedup": MetricSpec("engine_speedup", "lower-is-worse"),
    "sharded_rounds_per_second": MetricSpec(
        "sharded_rounds_per_second", "lower-is-worse"
    ),
    "rounds_per_second": MetricSpec("rounds_per_second", "lower-is-worse"),
    "wall_seconds": MetricSpec("wall_seconds", "higher-is-worse"),
    "peak_rss_mb": MetricSpec("peak_rss_mb", "higher-is-worse"),
    "churn_rounds_per_second": MetricSpec(
        "churn_rounds_per_second", "lower-is-worse"
    ),
    "baseline_rounds_per_second": MetricSpec(
        "baseline_rounds_per_second", "lower-is-worse"
    ),
    # churn-on wall time over churn-off wall time: growing means the
    # dynamics path itself got slower relative to the closed world.
    "dynamics_overhead": MetricSpec("dynamics_overhead", "higher-is-worse"),
    "plain_rounds_per_second": MetricSpec(
        "plain_rounds_per_second", "lower-is-worse"
    ),
    "live_rounds_per_second": MetricSpec(
        "live_rounds_per_second", "lower-is-worse"
    ),
    # live-layer-on per-round wall time over bare: growing means the
    # tracing + progress plumbing itself got more expensive.
    "obs_overhead": MetricSpec("obs_overhead", "higher-is-worse"),
    "simulate_rounds_per_second": MetricSpec(
        "simulate_rounds_per_second", "lower-is-worse"
    ),
    "session_rounds_per_second": MetricSpec(
        "session_rounds_per_second", "lower-is-worse"
    ),
    # session-stepped per-round wall time over simulate(): growing means
    # the session shell (observe snapshots, cache bookkeeping) itself
    # got more expensive relative to the bare kernel loop.
    "session_overhead": MetricSpec("session_overhead", "higher-is-worse"),
}


@dataclass(frozen=True)
class RegressionReport:
    """Every verdict for one store sweep, worst first within each kind."""

    verdicts: Tuple[Verdict, ...] = field(default_factory=tuple)
    window: int = 5

    @property
    def regressed(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.status == "regressed"]

    @property
    def warned(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.status == "warn"]

    @property
    def status(self) -> str:
        """The worst status across all verdicts (``skipped`` when empty)."""
        if not self.verdicts:
            return "skipped"
        return max(self.verdicts, key=lambda v: v.severity).status

    def exit_code(self, warn_only: bool = False) -> int:
        """1 when any metric regressed (0 under ``warn_only``)."""
        return 1 if self.regressed and not warn_only else 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "window": self.window,
            "verdicts": [v.as_dict() for v in self.verdicts],
        }


def regress_store(
    store: RunStore,
    kind: Optional[str] = None,
    window: int = 5,
    specs: Optional[Mapping[str, MetricSpec]] = None,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
    include_skipped: bool = False,
) -> RegressionReport:
    """Regression-check every numeric series in ``store``.

    Args:
        store: the run store to sweep.
        kind: restrict to one run kind (default: every kind, each
            checked against its own history).
        window: baseline window size.
        specs: per-metric direction overrides; unlisted metrics get
            :func:`default_spec` heuristics (:data:`BENCH_SPECS` covers
            the selector bench trajectory — it is merged in always,
            explicit ``specs`` winning).
        thresholds: detection knobs.
        include_skipped: also report series too short to compare.
    """
    merged_specs: Dict[str, MetricSpec] = dict(BENCH_SPECS)
    if specs:
        merged_specs.update(specs)
    verdicts: List[Verdict] = []
    for run_kind in ([kind] if kind is not None else store.kinds()):
        for name in store.value_names(kind=run_kind):
            spec = merged_specs.get(name, default_spec(name))
            values = [value for _run, value in store.series(name, kind=run_kind)]
            verdict = regress_series(
                values, spec, window=window, thresholds=thresholds, kind=run_kind
            )
            if verdict.status != "skipped" or include_skipped:
                verdicts.append(verdict)
    verdicts.sort(key=lambda v: (v.kind or "", -v.severity, v.metric))
    return RegressionReport(verdicts=tuple(verdicts), window=window)
