"""Lightweight span tracing: run → round → phase, exportable to Perfetto.

A tracer hands out *spans* — named, nested wall-clock intervals — via a
context manager::

    with tracer.span("round", round=3):
        with tracer.span("select"):
            ...

Two implementations share that interface:

- :data:`NULL_TRACER` (the default everywhere): every ``span()`` call
  returns one preallocated no-op context manager.  Tracing off costs two
  attribute lookups per span — no clock reads, no allocation — which is
  what keeps instrumented hot paths honest.
- :class:`SpanTracer`: records every finished span (name, category,
  start, duration, depth, args) and exports either **JSONL** (one span
  per line, for jq/pandas) or the **Chrome trace-event format** (a JSON
  object with ``traceEvents`` of ``ph: "X"`` complete events) loadable
  in ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_.

Spans read :func:`time.perf_counter` only — they never touch the
simulation's random streams, so a traced run's numbers are bit-identical
to an untraced one (pinned by ``tests/simulation/test_tracing.py``).

:func:`summarize` aggregates a written trace file back into per-phase
timing rows — the engine behind ``repro trace summarize``.

**Cross-process stitching** (the job service's live-operations layer):
a :class:`TraceContext` — trace id, parent span id, shard directory —
travels through environment variables from the server's supervisor into
the worker subprocess and on into the sharded selection pool's worker
processes.  Each process writes its own JSONL *shard*
(:class:`TraceShardWriter` appends spans as they finish, so even a
SIGKILLed process leaves its completed spans behind), and
:func:`merge_traces` rebases every shard onto the shared wall clock
(``epoch_unix``) and emits one Chrome trace in which worker and shard
spans sit inside the server's ``supervise`` span — one trace id, one
timeline (``repro trace merge``).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union


class _NullSpan:
    """The reusable no-op context manager NULL_TRACER hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: spans are no-ops, nothing is recorded."""

    #: Hot paths may gate per-item spans on this instead of paying even
    #: the no-op context manager per iteration.
    enabled = False

    #: No span is ever active (the profiler attributes samples to this).
    current_span_name = ""

    def span(self, name: str, cat: str = "", **args: Any) -> _NullSpan:
        return _NULL_SPAN


#: The shared do-nothing tracer (stateless, safe to share everywhere).
NULL_TRACER = NullTracer()


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, in tracer-relative seconds."""

    name: str
    cat: str
    start: float
    duration: float
    depth: int
    args: Dict[str, Any] = field(default_factory=dict)


class _Span:
    """The live context manager :meth:`SpanTracer.span` returns."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start", "_depth")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str, args: Dict):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._depth = self._tracer._enter(self._name)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end = perf_counter()
        self._tracer._exit(
            SpanRecord(
                name=self._name,
                cat=self._cat,
                start=self._start - self._tracer.epoch,
                duration=end - self._start,
                depth=self._depth,
                args=self._args,
            )
        )


class SpanTracer:
    """Records spans in memory; export with :meth:`write_jsonl` /
    :meth:`write_chrome`.

    Args:
        metadata: run-level key/values embedded in exports (e.g. the
            config summary the CLI attaches).

    Not thread-safe by design: the engine is single-threaded, and a
    tracer is scoped to one run.
    """

    enabled = True

    def __init__(self, metadata: Optional[Mapping[str, Any]] = None):
        self.epoch = perf_counter()
        #: Wall-clock time at the perf_counter epoch: spans are recorded
        #: relative to ``epoch``, so ``epoch_unix + span.start`` is an
        #: absolute timestamp — what cross-process merging rebases on.
        self.epoch_unix = time.time()
        self.spans: List[SpanRecord] = []
        self.metadata: Dict[str, Any] = dict(metadata or {})
        # The stack of open span names.  Its length is the depth; its top
        # is ``current_span_name``, which the resource profiler's sampling
        # thread reads to attribute samples — appends/pops are atomic
        # under the GIL, so the reader needs no lock.
        self._stack: List[str] = []

    def span(self, name: str, cat: str = "", **args: Any) -> _Span:
        return _Span(self, name, cat, args)

    @property
    def current_span_name(self) -> str:
        """The innermost open span's name ("" outside any span)."""
        stack = self._stack
        try:
            return stack[-1]
        except IndexError:
            return ""

    def _enter(self, name: str) -> int:
        depth = len(self._stack)
        self._stack.append(name)
        return depth

    def _exit(self, record: SpanRecord) -> None:
        self._stack.pop()
        self.spans.append(record)

    # -- export ----------------------------------------------------------

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """One meta line + one JSON object per span (chronological)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            handle.write(json.dumps(
                {
                    "kind": "meta",
                    "format": "repro-trace",
                    "epoch_unix": self.epoch_unix,
                    **self.metadata,
                }
            ) + "\n")
            for record in sorted(self.spans, key=lambda s: s.start):
                handle.write(json.dumps({
                    "kind": "span",
                    "name": record.name,
                    "cat": record.cat,
                    "start": record.start,
                    "duration": record.duration,
                    "depth": record.depth,
                    "args": record.args,
                }) + "\n")
        return path

    def chrome_payload(
        self, counters: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """The Chrome trace-event JSON object (see module docstring).

        Args:
            counters: optional metrics snapshot
                (:meth:`~repro.obs.metrics.MetricsRegistry.as_dict`)
                stored under ``otherData`` — viewers ignore it, and
                ``repro trace summarize`` reports it as hot counters.
        """
        events = [
            {
                "name": record.name,
                "cat": record.cat or "repro",
                "ph": "X",
                "ts": round(record.start * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": record.args,
            }
            for record in sorted(self.spans, key=lambda s: s.start)
        ]
        other: Dict[str, Any] = dict(self.metadata)
        if counters:
            other["counters"] = dict(counters)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": other,
        }

    def write_chrome(
        self,
        path: Union[str, Path],
        counters: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Write the Chrome trace-event file (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_payload(counters), indent=1))
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanTracer({len(self.spans)} spans)"


@dataclass(frozen=True)
class PhaseSummary:
    """Aggregated timings for one span name in a trace file."""

    name: str
    count: int
    total_seconds: float
    mean_seconds: float
    max_seconds: float
    p50_seconds: float = 0.0
    p95_seconds: float = 0.0


def _exact_percentile(sorted_values: List[float], q: float) -> float:
    """The q-th percentile of pre-sorted raw values (linear interpolation).

    Exact counterpart of :meth:`~repro.obs.metrics.Histogram.percentile`
    for when the raw observations are still at hand (span durations).
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    position = (q / 100.0) * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return sorted_values[lower] + (sorted_values[upper] - sorted_values[lower]) * fraction


def _spans_from_payload(payload: Any, path: Path) -> List[Tuple[str, float]]:
    """(name, duration-seconds) pairs from either export format."""
    if isinstance(payload, dict) and "traceEvents" in payload:
        return [
            (event["name"], float(event.get("dur", 0.0)) / 1e6)
            for event in payload["traceEvents"]
            if event.get("ph") == "X"
        ]
    raise ValueError(f"{path}: not a repro trace file")


def load_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a trace written by either exporter into a uniform shape:
    ``{"spans": [(name, seconds)...], "counters": {...}, "metadata": {...}}``.

    Raises:
        ValueError: for a file in neither export format.
    """
    path = Path(path)
    text = path.read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in text:
        payload = json.loads(text)
        other = payload.get("otherData", {}) or {}
        counters = other.pop("counters", {}) if isinstance(other, dict) else {}
        return {
            "spans": _spans_from_payload(payload, path),
            "counters": counters,
            "metadata": other,
        }
    # JSONL: one meta line, then span lines.
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    meta = json.loads(lines[0])
    if meta.get("kind") != "meta" or meta.get("format") != "repro-trace":
        raise ValueError(f"{path}: not a repro trace file")
    spans = []
    for line in lines[1:]:
        entry = json.loads(line)
        if entry.get("kind") != "span":
            raise ValueError(f"{path}: unexpected trace line kind "
                             f"{entry.get('kind')!r}")
        spans.append((entry["name"], float(entry["duration"])))
    metadata = {
        k: v
        for k, v in meta.items()
        if k not in ("kind", "format", "epoch_unix")
    }
    return {"spans": spans, "counters": {}, "metadata": metadata}


# -- cross-process trace stitching --------------------------------------

TRACE_ID_ENV = "REPRO_TRACE_ID"
TRACE_PARENT_ENV = "REPRO_TRACE_PARENT_SPAN"
TRACE_DIR_ENV = "REPRO_TRACE_DIR"
TRACE_PROCESS_ENV = "REPRO_TRACE_PROCESS"


def trace_id_for_job(job_id: str) -> str:
    """A deterministic 16-hex-digit trace id for one job.

    Derived from the job id alone, so a SIGKILLed-and-recovered job's
    new supervise attempt lands in the *same* trace as the shards its
    first life wrote — restarts extend a trace, they never fork one.

    >>> trace_id_for_job("job-000001") == trace_id_for_job("job-000001")
    True
    """
    digest = hashlib.sha256(f"repro-job:{job_id}".encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """The trace lineage one process hands to the processes it spawns.

    Travels by environment variables (:meth:`to_env` /
    :meth:`from_env`): server → supervisor-launched worker → fork-pool
    shard workers (fork children inherit the worker's environ).  The
    context carries *identity only* — each process still records its
    own spans into its own shard file under ``trace_dir``.
    """

    trace_id: str
    trace_dir: str
    parent_span_id: str = ""
    process: str = "main"

    def to_env(self) -> Dict[str, str]:
        return {
            TRACE_ID_ENV: self.trace_id,
            TRACE_DIR_ENV: self.trace_dir,
            TRACE_PARENT_ENV: self.parent_span_id,
            TRACE_PROCESS_ENV: self.process,
        }

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["TraceContext"]:
        """The context in ``environ`` (default ``os.environ``), or None."""
        if environ is None:
            import os

            environ = os.environ
        trace_id = environ.get(TRACE_ID_ENV, "")
        trace_dir = environ.get(TRACE_DIR_ENV, "")
        if not trace_id or not trace_dir:
            return None
        return cls(
            trace_id=trace_id,
            trace_dir=trace_dir,
            parent_span_id=environ.get(TRACE_PARENT_ENV, ""),
            process=environ.get(TRACE_PROCESS_ENV, "main"),
        )

    def child(
        self, process: str, parent_span_id: Optional[str] = None
    ) -> "TraceContext":
        """The context for a process this one spawns."""
        return TraceContext(
            trace_id=self.trace_id,
            trace_dir=self.trace_dir,
            parent_span_id=(
                self.parent_span_id
                if parent_span_id is None
                else parent_span_id
            ),
            process=process,
        )

    def shard_path(self, name: Optional[str] = None) -> Path:
        """This process's shard file under ``trace_dir``."""
        return Path(self.trace_dir) / f"{name or self.process}.trace.jsonl"

    def metadata(self) -> Dict[str, Any]:
        """The meta-line fields a shard written under this context carries."""
        return {
            "trace_id": self.trace_id,
            "process": self.process,
            "parent_span_id": self.parent_span_id,
        }


class TraceShardWriter:
    """A tracer that streams each finished span straight to a JSONL shard.

    Same ``span()`` interface as :class:`SpanTracer`, different
    durability contract: pooled or supervised processes can be killed at
    any moment, so spans hit the file (meta line first, then one line
    per finished span, flushed) instead of accumulating in memory.  The
    file format matches :meth:`SpanTracer.write_jsonl`, so
    :func:`load_trace`, :func:`summarize`, and :func:`merge_traces` read
    shards and in-memory exports interchangeably.
    """

    enabled = True

    def __init__(
        self,
        path: Union[str, Path],
        metadata: Optional[Mapping[str, Any]] = None,
    ):
        self.path = Path(path)
        self.epoch = perf_counter()
        self.epoch_unix = time.time()
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self._stack: List[str] = []
        self._handle = None

    def span(self, name: str, cat: str = "", **args: Any) -> _Span:
        return _Span(self, name, cat, args)

    @property
    def current_span_name(self) -> str:
        try:
            return self._stack[-1]
        except IndexError:
            return ""

    def _enter(self, name: str) -> int:
        depth = len(self._stack)
        self._stack.append(name)
        return depth

    def _exit(self, record: SpanRecord) -> None:
        self._stack.pop()
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = self.path.open("a")
            if fresh:
                self._handle.write(json.dumps(
                    {
                        "kind": "meta",
                        "format": "repro-trace",
                        "epoch_unix": self.epoch_unix,
                        **self.metadata,
                    }
                ) + "\n")
        self._handle.write(json.dumps({
            "kind": "span",
            "name": record.name,
            "cat": record.cat,
            "start": record.start,
            "duration": record.duration,
            "depth": record.depth,
            "args": record.args,
        }) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceShardWriter({str(self.path)!r})"


def read_trace_shard(path: Union[str, Path]) -> Dict[str, Any]:
    """One JSONL shard as ``{"meta": {...}, "spans": [span-dicts]}``.

    Raises:
        ValueError: for a file that is not a repro JSONL trace.
    """
    path = Path(path)
    lines = [
        line for line in path.read_text().splitlines() if line.strip()
    ]
    if not lines:
        raise ValueError(f"{path}: empty trace shard")
    meta = json.loads(lines[0])
    if meta.get("kind") != "meta" or meta.get("format") != "repro-trace":
        raise ValueError(f"{path}: not a repro trace file")
    spans = []
    for line in lines[1:]:
        entry = json.loads(line)
        if entry.get("kind") != "span":
            raise ValueError(
                f"{path}: unexpected trace line kind {entry.get('kind')!r}"
            )
        spans.append(entry)
    return {"meta": meta, "spans": spans}


def merge_traces(paths: Iterable[Union[str, Path]]) -> Dict[str, Any]:
    """Stitch per-process JSONL shards into one Chrome trace payload.

    Every shard's spans are rebased from its own ``perf_counter`` epoch
    onto the shared wall clock (``epoch_unix``, written by every shard
    writer), so spans from different processes line up on one timeline:
    the server's ``supervise`` span visibly contains the worker's
    ``run``/``round`` spans, which contain the pool's ``shard-select``
    spans.  Each source process becomes its own named thread of a
    single merged process (``ph: "M"`` metadata events carry the
    names), and the shared trace id lands in ``otherData``.

    Raises:
        ValueError: for no shards, a shard without a trace id, or
            shards from different traces (merging unrelated jobs is a
            mistake, not a union).
    """
    shards = []
    for path in sorted(Path(p) for p in paths):
        loaded = read_trace_shard(path)
        loaded["path"] = path
        shards.append(loaded)
    if not shards:
        raise ValueError("no trace shards to merge")
    trace_ids = {s["meta"].get("trace_id") for s in shards}
    if None in trace_ids or "" in trace_ids:
        missing = [
            str(s["path"]) for s in shards if not s["meta"].get("trace_id")
        ]
        raise ValueError(
            f"shard(s) without a trace_id cannot be merged: "
            f"{', '.join(missing)}"
        )
    if len(trace_ids) > 1:
        raise ValueError(
            f"refusing to merge shards from different traces: "
            f"{', '.join(sorted(trace_ids))}"
        )
    trace_id = trace_ids.pop()
    base = min(float(s["meta"].get("epoch_unix", 0.0)) for s in shards)
    processes = sorted(
        {str(s["meta"].get("process", "main")) for s in shards}
    )
    tid_of = {process: tid for tid, process in enumerate(processes, start=1)}

    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": f"repro trace {trace_id}"},
        }
    ]
    for process in processes:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid_of[process],
            "args": {"name": process},
        })
    lineage = {}
    for shard in shards:
        meta = shard["meta"]
        process = str(meta.get("process", "main"))
        lineage[process] = meta.get("parent_span_id", "")
        offset = float(meta.get("epoch_unix", 0.0)) - base
        tid = tid_of[process]
        for span in shard["spans"]:
            events.append({
                "name": span["name"],
                "cat": span.get("cat") or "repro",
                "ph": "X",
                "ts": round((offset + float(span["start"])) * 1e6, 3),
                "dur": round(float(span["duration"]) * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": span.get("args", {}),
            })
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0), e["tid"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": trace_id,
            "processes": processes,
            "parents": lineage,
            "shards": len(shards),
        },
    }


def write_merged_trace(
    out: Union[str, Path], paths: Iterable[Union[str, Path]]
) -> Path:
    """Write :func:`merge_traces` output as one Chrome trace file."""
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(merge_traces(paths), indent=1))
    return out


def summarize(path: Union[str, Path]) -> List[PhaseSummary]:
    """Per-name timing aggregates for a trace file, slowest total first."""
    loaded = load_trace(path)
    totals: Dict[str, List[float]] = {}
    for name, seconds in loaded["spans"]:
        totals.setdefault(name, []).append(seconds)
    rows = []
    for name, durations in totals.items():
        ordered = sorted(durations)
        rows.append(PhaseSummary(
            name=name,
            count=len(durations),
            total_seconds=sum(durations),
            mean_seconds=sum(durations) / len(durations),
            max_seconds=ordered[-1],
            p50_seconds=_exact_percentile(ordered, 50.0),
            p95_seconds=_exact_percentile(ordered, 95.0),
        ))
    return sorted(rows, key=lambda row: row.total_seconds, reverse=True)
