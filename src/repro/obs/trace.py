"""Lightweight span tracing: run → round → phase, exportable to Perfetto.

A tracer hands out *spans* — named, nested wall-clock intervals — via a
context manager::

    with tracer.span("round", round=3):
        with tracer.span("select"):
            ...

Two implementations share that interface:

- :data:`NULL_TRACER` (the default everywhere): every ``span()`` call
  returns one preallocated no-op context manager.  Tracing off costs two
  attribute lookups per span — no clock reads, no allocation — which is
  what keeps instrumented hot paths honest.
- :class:`SpanTracer`: records every finished span (name, category,
  start, duration, depth, args) and exports either **JSONL** (one span
  per line, for jq/pandas) or the **Chrome trace-event format** (a JSON
  object with ``traceEvents`` of ``ph: "X"`` complete events) loadable
  in ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_.

Spans read :func:`time.perf_counter` only — they never touch the
simulation's random streams, so a traced run's numbers are bit-identical
to an untraced one (pinned by ``tests/simulation/test_tracing.py``).

:func:`summarize` aggregates a written trace file back into per-phase
timing rows — the engine behind ``repro trace summarize``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union


class _NullSpan:
    """The reusable no-op context manager NULL_TRACER hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: spans are no-ops, nothing is recorded."""

    #: Hot paths may gate per-item spans on this instead of paying even
    #: the no-op context manager per iteration.
    enabled = False

    #: No span is ever active (the profiler attributes samples to this).
    current_span_name = ""

    def span(self, name: str, cat: str = "", **args: Any) -> _NullSpan:
        return _NULL_SPAN


#: The shared do-nothing tracer (stateless, safe to share everywhere).
NULL_TRACER = NullTracer()


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, in tracer-relative seconds."""

    name: str
    cat: str
    start: float
    duration: float
    depth: int
    args: Dict[str, Any] = field(default_factory=dict)


class _Span:
    """The live context manager :meth:`SpanTracer.span` returns."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start", "_depth")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str, args: Dict):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._depth = self._tracer._enter(self._name)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end = perf_counter()
        self._tracer._exit(
            SpanRecord(
                name=self._name,
                cat=self._cat,
                start=self._start - self._tracer.epoch,
                duration=end - self._start,
                depth=self._depth,
                args=self._args,
            )
        )


class SpanTracer:
    """Records spans in memory; export with :meth:`write_jsonl` /
    :meth:`write_chrome`.

    Args:
        metadata: run-level key/values embedded in exports (e.g. the
            config summary the CLI attaches).

    Not thread-safe by design: the engine is single-threaded, and a
    tracer is scoped to one run.
    """

    enabled = True

    def __init__(self, metadata: Optional[Mapping[str, Any]] = None):
        self.epoch = perf_counter()
        self.spans: List[SpanRecord] = []
        self.metadata: Dict[str, Any] = dict(metadata or {})
        # The stack of open span names.  Its length is the depth; its top
        # is ``current_span_name``, which the resource profiler's sampling
        # thread reads to attribute samples — appends/pops are atomic
        # under the GIL, so the reader needs no lock.
        self._stack: List[str] = []

    def span(self, name: str, cat: str = "", **args: Any) -> _Span:
        return _Span(self, name, cat, args)

    @property
    def current_span_name(self) -> str:
        """The innermost open span's name ("" outside any span)."""
        stack = self._stack
        try:
            return stack[-1]
        except IndexError:
            return ""

    def _enter(self, name: str) -> int:
        depth = len(self._stack)
        self._stack.append(name)
        return depth

    def _exit(self, record: SpanRecord) -> None:
        self._stack.pop()
        self.spans.append(record)

    # -- export ----------------------------------------------------------

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """One meta line + one JSON object per span (chronological)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            handle.write(json.dumps(
                {"kind": "meta", "format": "repro-trace", **self.metadata}
            ) + "\n")
            for record in sorted(self.spans, key=lambda s: s.start):
                handle.write(json.dumps({
                    "kind": "span",
                    "name": record.name,
                    "cat": record.cat,
                    "start": record.start,
                    "duration": record.duration,
                    "depth": record.depth,
                    "args": record.args,
                }) + "\n")
        return path

    def chrome_payload(
        self, counters: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """The Chrome trace-event JSON object (see module docstring).

        Args:
            counters: optional metrics snapshot
                (:meth:`~repro.obs.metrics.MetricsRegistry.as_dict`)
                stored under ``otherData`` — viewers ignore it, and
                ``repro trace summarize`` reports it as hot counters.
        """
        events = [
            {
                "name": record.name,
                "cat": record.cat or "repro",
                "ph": "X",
                "ts": round(record.start * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": record.args,
            }
            for record in sorted(self.spans, key=lambda s: s.start)
        ]
        other: Dict[str, Any] = dict(self.metadata)
        if counters:
            other["counters"] = dict(counters)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": other,
        }

    def write_chrome(
        self,
        path: Union[str, Path],
        counters: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Write the Chrome trace-event file (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_payload(counters), indent=1))
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanTracer({len(self.spans)} spans)"


@dataclass(frozen=True)
class PhaseSummary:
    """Aggregated timings for one span name in a trace file."""

    name: str
    count: int
    total_seconds: float
    mean_seconds: float
    max_seconds: float
    p50_seconds: float = 0.0
    p95_seconds: float = 0.0


def _exact_percentile(sorted_values: List[float], q: float) -> float:
    """The q-th percentile of pre-sorted raw values (linear interpolation).

    Exact counterpart of :meth:`~repro.obs.metrics.Histogram.percentile`
    for when the raw observations are still at hand (span durations).
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    position = (q / 100.0) * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return sorted_values[lower] + (sorted_values[upper] - sorted_values[lower]) * fraction


def _spans_from_payload(payload: Any, path: Path) -> List[Tuple[str, float]]:
    """(name, duration-seconds) pairs from either export format."""
    if isinstance(payload, dict) and "traceEvents" in payload:
        return [
            (event["name"], float(event.get("dur", 0.0)) / 1e6)
            for event in payload["traceEvents"]
            if event.get("ph") == "X"
        ]
    raise ValueError(f"{path}: not a repro trace file")


def load_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a trace written by either exporter into a uniform shape:
    ``{"spans": [(name, seconds)...], "counters": {...}, "metadata": {...}}``.

    Raises:
        ValueError: for a file in neither export format.
    """
    path = Path(path)
    text = path.read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in text:
        payload = json.loads(text)
        other = payload.get("otherData", {}) or {}
        counters = other.pop("counters", {}) if isinstance(other, dict) else {}
        return {
            "spans": _spans_from_payload(payload, path),
            "counters": counters,
            "metadata": other,
        }
    # JSONL: one meta line, then span lines.
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    meta = json.loads(lines[0])
    if meta.get("kind") != "meta" or meta.get("format") != "repro-trace":
        raise ValueError(f"{path}: not a repro trace file")
    spans = []
    for line in lines[1:]:
        entry = json.loads(line)
        if entry.get("kind") != "span":
            raise ValueError(f"{path}: unexpected trace line kind "
                             f"{entry.get('kind')!r}")
        spans.append((entry["name"], float(entry["duration"])))
    metadata = {k: v for k, v in meta.items() if k not in ("kind", "format")}
    return {"spans": spans, "counters": {}, "metadata": metadata}


def summarize(path: Union[str, Path]) -> List[PhaseSummary]:
    """Per-name timing aggregates for a trace file, slowest total first."""
    loaded = load_trace(path)
    totals: Dict[str, List[float]] = {}
    for name, seconds in loaded["spans"]:
        totals.setdefault(name, []).append(seconds)
    rows = []
    for name, durations in totals.items():
        ordered = sorted(durations)
        rows.append(PhaseSummary(
            name=name,
            count=len(durations),
            total_seconds=sum(durations),
            mean_seconds=sum(durations) / len(durations),
            max_seconds=ordered[-1],
            p50_seconds=_exact_percentile(ordered, 50.0),
            p95_seconds=_exact_percentile(ordered, 95.0),
        ))
    return sorted(rows, key=lambda row: row.total_seconds, reverse=True)
