"""Dashboards over the run store: terminal sparklines and one-file HTML.

Two renderers over the same data (:class:`~repro.obs.store.RunStore`
series + :func:`~repro.obs.regress.regress_store` verdicts):

- :func:`render_terminal_dashboard` — metric trends as unicode
  sparklines (reusing :mod:`repro.io.ascii_chart`) plus the verdict
  table, for ``repro obs dashboard`` in a terminal;
- :func:`render_html_dashboard` — a **self-contained** HTML file
  (inline CSS/JS, inline SVG charts, zero third-party dependencies) CI
  can upload as a build artifact and anyone can open from disk.

The HTML follows the repo's chart conventions: one accent hue for the
single-series trend lines, status colors only for verdict chips (always
paired with a glyph + word, never color alone), light and dark surfaces
via ``prefers-color-scheme``, and a table view of every run so nothing
is readable only from a chart.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.regress import RegressionReport, Thresholds, DEFAULT_THRESHOLDS, regress_store
from repro.obs.store import DEDUPE_LABEL, RunStore

#: Status chips: glyph + label + css class (color is never the only cue).
_STATUS_CHIP = {
    "ok": ("✓", "ok"),
    "warn": ("△", "warn"),
    "regressed": ("✕", "regressed"),
    "skipped": ("·", "skipped"),
}


# -- terminal --------------------------------------------------------------


def render_terminal_dashboard(
    store: RunStore,
    window: int = 5,
    width: int = 40,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> str:
    """The store as text: per-kind sparklines + the regression verdicts."""
    from repro.analysis.series import Series, SeriesPoint
    from repro.io.ascii_chart import render_sparkline
    from repro.io.tables import render_table

    lines = [f"observatory: {store.root} ({len(store)} runs)"]
    for kind in store.kinds():
        entries = store.entries(kind=kind)
        lines.append("")
        lines.append(f"[{kind}] {len(entries)} runs")
        for name in store.value_names(kind=kind):
            history = [value for _run, value in store.series(name, kind=kind)]
            if len(history) < 2:
                lines.append(f"  {name} = {history[0]:.4g} (single run)")
                continue
            series = Series(
                label=name,
                points=[
                    SeriesPoint(x=float(i), mean=value)
                    for i, value in enumerate(history)
                ],
            )
            lines.append("  " + render_sparkline(series, width=width))
    report = regress_store(store, window=window, thresholds=thresholds)
    if report.verdicts:
        lines.append("")
        lines.append(f"regression verdicts (window={report.window}, "
                     f"status={report.status}):")
        rows = [
            [
                verdict.kind or "-",
                verdict.metric,
                verdict.status,
                "-" if verdict.candidate is None else verdict.candidate,
                "-" if verdict.baseline_median is None else verdict.baseline_median,
                f"{verdict.deviation:+.2f}",
                verdict.method,
            ]
            for verdict in report.verdicts
        ]
        lines.append(render_table(
            ["kind", "metric", "status", "latest", "baseline", "score", "method"],
            rows, precision=4,
        ))
    return "\n".join(lines)


# -- HTML ------------------------------------------------------------------

_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --card: #ffffff; --border: #e4e3df;
  --ink: #0b0b0b; --ink-2: #52514e;
  --accent: #2a78d6;
  --ok: #008300; --warn: #eda100; --bad: #e34948; --muted: #52514e;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --card: #232322; --border: #3a3a37;
    --ink: #ffffff; --ink-2: #c3c2b7;
    --accent: #3987e5;
    --ok: #47c447; --warn: #c98500; --bad: #e66767; --muted: #c3c2b7;
  }
}
* { box-sizing: border-box; }
body { margin: 0; padding: 24px; background: var(--surface); color: var(--ink);
       font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--ink-2); margin-bottom: 18px; }
.chip { display: inline-block; padding: 1px 10px; border-radius: 10px;
        border: 1px solid var(--border); font-size: 12px; }
.chip.ok { color: var(--ok); } .chip.warn { color: var(--warn); }
.chip.regressed { color: var(--bad); font-weight: 600; }
.chip.skipped { color: var(--muted); }
.grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(300px, 1fr));
        gap: 12px; }
.card { background: var(--card); border: 1px solid var(--border);
        border-radius: 8px; padding: 12px 14px; }
.card .name { font-size: 12px; color: var(--ink-2); word-break: break-all; }
.card .value { font-size: 20px; font-variant-numeric: tabular-nums; }
.card .delta { font-size: 12px; color: var(--ink-2); }
table { border-collapse: collapse; width: 100%; font-variant-numeric: tabular-nums; }
th, td { text-align: left; padding: 4px 10px 4px 0; border-bottom: 1px solid var(--border);
         font-size: 13px; }
th { color: var(--ink-2); font-weight: 500; }
td.num { text-align: right; }
svg .trend { stroke: var(--accent); fill: none; stroke-width: 2;
             stroke-linejoin: round; stroke-linecap: round; }
svg .dot { fill: var(--accent); }
svg .median { stroke: var(--ink-2); stroke-dasharray: 3 4; stroke-width: 1; }
svg .hit { fill: transparent; }
input[type=search] { background: var(--card); color: var(--ink);
  border: 1px solid var(--border); border-radius: 6px; padding: 6px 10px;
  width: 280px; margin: 4px 0 14px; }
.evidence { color: var(--ink-2); font-size: 12px; }
"""

_JS = """
document.getElementById('filter').addEventListener('input', function (event) {
  var needle = event.target.value.toLowerCase();
  document.querySelectorAll('.grid .card').forEach(function (card) {
    card.style.display =
      card.dataset.name.indexOf(needle) === -1 ? 'none' : '';
  });
});
"""


def _svg_trend(
    values: Sequence[float],
    run_ids: Sequence[str],
    baseline_median: Optional[float] = None,
    width: int = 280,
    height: int = 64,
) -> str:
    """A single-series inline-SVG trend line with native hover tooltips."""
    pad = 8.0
    low, high = min(values), max(values)
    if baseline_median is not None:
        low, high = min(low, baseline_median), max(high, baseline_median)
    if high == low:
        low, high = low - 1.0, high + 1.0

    def x_at(i: int) -> float:
        if len(values) == 1:
            return width / 2.0
        return pad + (width - 2 * pad) * i / (len(values) - 1)

    def y_at(v: float) -> float:
        return pad + (height - 2 * pad) * (1.0 - (v - low) / (high - low))

    points = " ".join(f"{x_at(i):.1f},{y_at(v):.1f}" for i, v in enumerate(values))
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" height="{height}" '
        f'role="img" aria-label="trend of {len(values)} runs">'
    ]
    if baseline_median is not None:
        y = y_at(baseline_median)
        parts.append(
            f'<line class="median" x1="{pad}" y1="{y:.1f}" '
            f'x2="{width - pad}" y2="{y:.1f}"/>'
        )
    parts.append(f'<polyline class="trend" points="{points}"/>')
    last_x, last_y = x_at(len(values) - 1), y_at(values[-1])
    parts.append(f'<circle class="dot" cx="{last_x:.1f}" cy="{last_y:.1f}" r="3.5"/>')
    for i, value in enumerate(values):
        parts.append(
            f'<circle class="hit" cx="{x_at(i):.1f}" cy="{y_at(value):.1f}" r="8">'
            f"<title>{html.escape(str(run_ids[i]))}: {value:.6g}</title></circle>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _chip(status: str) -> str:
    glyph, label = _STATUS_CHIP.get(status, ("?", status))
    return f'<span class="chip {html.escape(status)}">{glyph} {html.escape(label)}</span>'


def render_html_dashboard(
    store: RunStore,
    window: int = 5,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
    title: str = "repro observatory",
    report: Optional[RegressionReport] = None,
) -> str:
    """The store as one self-contained HTML page (see module docstring)."""
    if report is None:
        report = regress_store(store, window=window, thresholds=thresholds)
    verdict_by_metric: Dict[Tuple[Optional[str], str], Any] = {
        (v.kind, v.metric): v for v in report.verdicts
    }
    out: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)} {_chip(report.status)}</h1>",
        f"<div class='sub'>store <code>{html.escape(str(store.root))}</code> "
        f"&middot; {len(store)} runs &middot; regression window {report.window}</div>",
    ]

    if report.verdicts:
        out.append("<h2>Regression verdicts</h2><table>")
        out.append(
            "<tr><th>kind</th><th>metric</th><th>status</th><th>latest</th>"
            "<th>baseline median</th><th>score</th><th>evidence</th></tr>"
        )
        for verdict in report.verdicts:
            latest = "-" if verdict.candidate is None else f"{verdict.candidate:.6g}"
            median = (
                "-" if verdict.baseline_median is None
                else f"{verdict.baseline_median:.6g}"
            )
            out.append(
                f"<tr><td>{html.escape(verdict.kind or '-')}</td>"
                f"<td>{html.escape(verdict.metric)}</td>"
                f"<td>{_chip(verdict.status)}</td>"
                f"<td class='num'>{latest}</td><td class='num'>{median}</td>"
                f"<td class='num'>{verdict.deviation:+.2f}</td>"
                f"<td class='evidence'>{html.escape(verdict.evidence)}</td></tr>"
            )
        out.append("</table>")

    out.append("<h2>Metric trends</h2>")
    out.append("<input id='filter' type='search' "
               "placeholder='filter metrics&hellip;' aria-label='filter metrics'>")
    out.append("<div class='grid'>")
    for kind in store.kinds():
        for name in store.value_names(kind=kind):
            history = store.series(name, kind=kind)
            values = [value for _run, value in history]
            run_ids = [run_id for run_id, _value in history]
            verdict = verdict_by_metric.get((kind, name))
            delta = ""
            chart = ""
            if verdict is not None and verdict.baseline_median is not None:
                delta = (
                    f"baseline {verdict.baseline_median:.6g} &middot; "
                    f"score {verdict.deviation:+.2f} {_chip(verdict.status)}"
                )
            if len(values) >= 2:
                chart = _svg_trend(
                    values, run_ids,
                    baseline_median=(
                        verdict.baseline_median if verdict is not None else None
                    ),
                )
            card_key = html.escape(f"{kind} {name}".lower(), quote=True)
            out.append(
                f"<div class='card' data-name='{card_key}'>"
                f"<div class='name'>{html.escape(kind)} &middot; "
                f"{html.escape(name)}</div>"
                f"<div class='value'>{values[-1]:.6g}</div>"
                f"<div class='delta'>{delta}</div>{chart}</div>"
            )
    out.append("</div>")

    out.append("<h2>Runs</h2><table>")
    out.append("<tr><th>run</th><th>kind</th><th>created</th><th>labels</th>"
               "<th>values</th></tr>")
    for entry in store.entries():
        labels = ", ".join(
            f"{k}={v}" for k, v in sorted(entry["labels"].items())
            if k != DEDUPE_LABEL
        )
        out.append(
            f"<tr><td>{html.escape(entry['run_id'])}</td>"
            f"<td>{html.escape(entry['kind'])}</td>"
            f"<td>{html.escape(entry['created_at'])}</td>"
            f"<td>{html.escape(labels)}</td>"
            f"<td class='num'>{len(entry['values'])}</td></tr>"
        )
    out.append("</table>")
    out.append(f"<script>{_JS}</script></body></html>")
    return "".join(out)


def write_html_dashboard(
    store: RunStore,
    path: Union[str, Path],
    window: int = 5,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
    title: str = "repro observatory",
) -> Path:
    """Render and atomically write the HTML dashboard; returns its path."""
    from repro.io.atomic import atomic_write_text

    return atomic_write_text(
        path,
        render_html_dashboard(store, window=window, thresholds=thresholds,
                              title=title),
    )


def diff_records(a: Dict[str, float], b: Dict[str, float]) -> List[Dict[str, Any]]:
    """Value-by-value comparison rows between two runs' numeric summaries.

    Each row: ``{"metric", "a", "b", "delta", "pct"}`` (None where a side
    lacks the metric); ordered by metric name.
    """
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(a) | set(b)):
        left, right = a.get(name), b.get(name)
        delta = pct = None
        if left is not None and right is not None:
            delta = right - left
            if left != 0:
                pct = 100.0 * delta / abs(left)
        rows.append({"metric": name, "a": left, "b": right,
                     "delta": delta, "pct": pct})
    return rows


def summarize_json(report: RegressionReport) -> str:
    """The report as machine-readable JSON (for CI annotations)."""
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)
