"""Run manifests: the provenance record written next to every artifact.

A result file answers *what* came out; the manifest answers *how it was
produced* — which configuration (by fingerprint), which base seed, which
git revision of this repository, which python/numpy on which host, and
when.  Six months later that is the difference between "re-runnable" and
"a number of unknown origin".

Manifests are plain JSON written atomically
(:func:`repro.io.atomic.atomic_write_text`), so a crash mid-write never
leaves a half manifest next to a whole result.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Optional, Union

FORMAT_VERSION = 1


def git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current git commit hash, or None outside a repo / without git.

    Never raises: provenance is best-effort — a missing revision is
    recorded as null, not a crashed run.
    """
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = probe.stdout.strip()
    return revision if probe.returncode == 0 and revision else None


@dataclass(frozen=True)
class RunManifest:
    """The provenance of one run (see module docstring)."""

    config_fingerprint: str
    base_seed: int
    created_at: str
    git_revision: Optional[str]
    python_version: str
    numpy_version: Optional[str]
    platform: str
    hostname: str
    command: Optional[str] = None
    config: Optional[Dict[str, Any]] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    format_version: int = FORMAT_VERSION

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def build_manifest(
    config: Any = None,
    base_seed: int = 0,
    command: Optional[str] = None,
    **extra: Any,
) -> RunManifest:
    """Snapshot the current process + ``config`` into a manifest.

    Args:
        config: the run's configuration (any dataclass; fingerprinted
            via :func:`~repro.resilience.journal.config_fingerprint`
            and, for dataclasses, embedded field-by-field).
        base_seed: the campaign's root seed.
        command: the invoking command line, if any.
        extra: arbitrary additional provenance (experiment id, …).
    """
    # Imported here, not at module level: obs must stay a leaf package
    # importable from anywhere (retry and the engine log through it).
    from repro.resilience.journal import config_fingerprint

    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        numpy_version = None
    config_dict: Optional[Dict[str, Any]] = None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        config_dict = json.loads(
            json.dumps(dataclasses.asdict(config), default=repr)
        )
    return RunManifest(
        config_fingerprint=config_fingerprint(config, base_seed=base_seed),
        base_seed=base_seed,
        created_at=datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        git_revision=git_revision(),
        python_version=sys.version.split()[0],
        numpy_version=numpy_version,
        platform=platform.platform(),
        hostname=platform.node(),
        command=command,
        config=config_dict,
        extra=dict(extra),
    )


def manifest_path_for(artifact: Union[str, Path]) -> Path:
    """Where an artifact's manifest lives: ``<artifact>.manifest.json``."""
    artifact = Path(artifact)
    return artifact.with_name(artifact.name + ".manifest.json")


def write_manifest(
    manifest: RunManifest, artifact: Union[str, Path]
) -> Path:
    """Write ``manifest`` atomically next to ``artifact``; returns its path."""
    from repro.io.atomic import atomic_write_text  # leaf-package rule, see above

    path = manifest_path_for(artifact)
    atomic_write_text(path, json.dumps(manifest.as_dict(), indent=2) + "\n")
    return path


def load_manifest(path: Union[str, Path]) -> RunManifest:
    """Load a manifest (accepts the artifact path or the manifest path).

    Raises:
        ValueError: for a file that is not a version-compatible manifest.
    """
    path = Path(path)
    if not path.name.endswith(".manifest.json"):
        path = manifest_path_for(path)
    payload = json.loads(path.read_text())
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: not a version-{FORMAT_VERSION} run manifest "
            f"(got format_version={payload.get('format_version')!r})"
        )
    return RunManifest.from_dict(payload)
