"""A metrics registry: counters, gauges, and histograms with label sets.

The registry generalises :class:`~repro.simulation.perf.PerfStats` (a
fixed bundle of six counters) into an open instrument set, so new series
— measurements accepted/rejected, payout per round, demand-level
distribution, budget remaining — cost one line at the emit site instead
of a schema change.  :meth:`MetricsRegistry.record_perf` maps the legacy
bundle onto registry series, so both views agree by construction.

Design constraints, in order:

1. **Determinism.**  Instruments hold plain numbers; merging two
   registries is arithmetic, and merging a sequence of them in a fixed
   order is bit-identical regardless of the order the parts *arrived*
   in (how the parallel runner makes worker metrics reproducible).
2. **Serialisable.**  ``as_dict`` / ``from_dict`` round-trip through
   JSON so per-round snapshots ride the events-JSONL files and worker
   processes can ship their registries home by pickle or JSON alike.
3. **Cheap.**  An emit is a dict lookup plus a float add; histograms
   bisect a short bounds tuple.  Nothing locks — the engine is
   single-threaded and cross-process aggregation happens by merge.

Series are identified by name plus a (sorted) label set, rendered
Prometheus-style: ``measurements_total{outcome=accepted}``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import (
    TYPE_CHECKING, Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard: obs is a leaf
    from repro.simulation.perf import PerfStats

#: Default histogram bounds for sub-second wall times (seconds).
TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: A label set in canonical form: sorted (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _canonical_labels(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_key(name: str, labels: Mapping[str, Any]) -> str:
    """The Prometheus-style series name: ``name{k=v,...}`` (sorted keys).

    >>> series_key("hits", {"cache": "problem"})
    'hits{cache=problem}'
    """
    canonical = _canonical_labels(labels)
    if not canonical:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in canonical)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing sum (events, dollars, rejections)."""

    kind = "counter"

    def __init__(self, value: float = 0.0):
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Counter":
        return cls(value=payload["value"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time value (budget remaining, active tasks)."""

    kind = "gauge"

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        # Last write wins: ``other`` is the later snapshot.  Merge order
        # is the caller's contract (the runner merges in repetition
        # order), which is what keeps aggregation deterministic.
        self.value = other.value

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Gauge":
        return cls(value=payload["value"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.value})"


class Histogram:
    """A distribution: bucket counts over fixed bounds, plus sum/min/max.

    Args:
        bounds: ascending upper bounds (inclusive, ``le`` semantics);
            one overflow bucket past the last bound is implicit.
    """

    kind = "histogram"

    def __init__(self, bounds: Iterable[float] = TIME_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"bucket bounds must ascend, got {self.bounds}")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile estimated by linear bucket interpolation.

        Within the bucket containing the target rank, observations are
        assumed uniform between the bucket's edges (Prometheus
        ``histogram_quantile`` semantics).  The first bucket's lower edge
        is the recorded ``min``; the overflow bucket's upper edge is the
        recorded ``max`` — so estimates are always clamped inside the
        observed range, and an exact-at-the-edges answer for q=0/q=100.

        Returns None for an empty histogram.

        Raises:
            ValueError: for q outside [0, 100].
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return None
        target = (q / 100.0) * self.count
        cumulative = 0.0
        value: Optional[float] = None
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count and cumulative + bucket_count >= target:
                if index == 0:
                    low = self.min if self.min is not None else 0.0
                    high = self.bounds[0]
                elif index == len(self.bounds):
                    low = self.bounds[-1]
                    high = self.max if self.max is not None else low
                else:
                    low = self.bounds[index - 1]
                    high = self.bounds[index]
                fraction = (target - cumulative) / bucket_count
                value = low + (high - low) * fraction
                break
            cumulative += bucket_count
        if value is None:  # q == 100 with floating-point shortfall
            value = self.max if self.max is not None else 0.0
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        self.bucket_counts = [
            a + b for a, b in zip(self.bucket_counts, other.bucket_counts)
        ]
        self.count += other.count
        self.sum += other.sum
        for candidate in (other.min,):
            if candidate is not None and (self.min is None or candidate < self.min):
                self.min = candidate
        for candidate in (other.max,):
            if candidate is not None and (self.max is None or candidate > self.max):
                self.max = candidate

    def as_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Histogram":
        histogram = cls(bounds=payload["bounds"])
        histogram.bucket_counts = [int(c) for c in payload["bucket_counts"]]
        histogram.count = int(payload["count"])
        histogram.sum = float(payload["sum"])
        histogram.min = payload.get("min")
        histogram.max = payload.get("max")
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram(count={self.count}, sum={self.sum:g})"


_INSTRUMENT_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A process- or scope-wide collection of named instruments.

    Instruments are created on first use (``registry.counter("x")``)
    and subsequent calls with the same name + labels return the same
    object; asking for an existing name as a different instrument kind
    raises, because silently forking a series corrupts dashboards.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Instrument] = {}

    # -- instrument accessors -------------------------------------------

    def _get(self, kind: str, name: str, labels: Mapping[str, Any], factory):
        key = (name, _canonical_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif instrument.kind != kind:
            raise ValueError(
                f"metric {series_key(name, labels)!r} already registered "
                f"as a {instrument.kind}, not a {kind}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        bounds: Optional[Iterable[float]] = None,
        **labels: Any,
    ) -> Histogram:
        factory = (
            Histogram if bounds is None else (lambda: Histogram(bounds=bounds))
        )
        return self._get("histogram", name, labels, factory)

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __bool__(self) -> bool:
        # An empty registry is falsy so serializers can skip it cheaply.
        return bool(self._instruments)

    def series(self) -> Dict[str, Instrument]:
        """All instruments keyed by their rendered series name, sorted."""
        return {
            series_key(name, dict(labels)): instrument
            for (name, labels), instrument in sorted(self._instruments.items())
        }

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """A counter/gauge value (None if the series does not exist)."""
        instrument = self._instruments.get((name, _canonical_labels(labels)))
        return getattr(instrument, "value", None)

    # -- PerfStats bridge ------------------------------------------------

    def record_perf(self, perf: "PerfStats") -> None:
        """Absorb one legacy :class:`PerfStats` bundle into the registry.

        The mapping (also documented in docs/architecture.md): the five
        integer counters become counters of the same name; the wall-time
        total lands in the ``selector_seconds_total`` counter.  Per-call
        latency *distribution* comes from the engine observing
        ``selector_seconds`` directly — PerfStats only carries the sum.
        """
        self.counter("problem_cache_hits").inc(perf.problem_cache_hits)
        self.counter("problem_cache_misses").inc(perf.problem_cache_misses)
        self.counter("price_cache_hits").inc(perf.price_cache_hits)
        self.counter("dp_states_expanded").inc(perf.dp_states_expanded)
        self.counter("selector_calls").inc(perf.selector_calls)
        self.counter("selector_seconds_total").inc(perf.selector_wall_time)

    # -- merge / serialisation ------------------------------------------

    def merge(self, other: Optional["MetricsRegistry"]) -> "MetricsRegistry":
        """Fold ``other`` into this registry (returns self; None is a no-op).

        Counters and histograms add (commutative); gauges take the
        incoming value, so merge order is the caller's statement of
        which snapshot is "later".  Merging parts in a fixed canonical
        order (e.g. repetition order) therefore yields bit-identical
        totals no matter when each part was produced.
        """
        if other is None:
            return self
        for (name, labels), theirs in other._instruments.items():
            mine = self._instruments.get((name, labels))
            if mine is None:
                # Fresh copy so later merges never alias the source.
                mine = type(theirs).from_dict(theirs.as_dict())
                self._instruments[(name, labels)] = mine
            elif mine.kind != theirs.kind:
                raise ValueError(
                    f"metric {series_key(name, dict(labels))!r} is a "
                    f"{mine.kind} here but a {theirs.kind} in the merged part"
                )
            else:
                mine.merge(theirs)
        return self

    @classmethod
    def merged(
        cls, parts: Iterable[Optional["MetricsRegistry"]]
    ) -> "MetricsRegistry":
        """A new registry folding ``parts`` in iteration order."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot: ``{series: {kind, ...instrument state}}``."""
        return {
            key: {"kind": instrument.kind, **instrument.as_dict()}
            for key, instrument in self.series().items()
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        """Inverse of :meth:`as_dict`.

        Raises:
            ValueError: for an unknown instrument kind or a malformed
                series key.
        """
        registry = cls()
        for key, state in payload.items():
            kind = state.get("kind")
            if kind not in _INSTRUMENT_TYPES:
                raise ValueError(f"unknown instrument kind {kind!r} for {key!r}")
            name, labels = _parse_series_key(key)
            body = {k: v for k, v in state.items() if k != "kind"}
            registry._instruments[(name, labels)] = (
                _INSTRUMENT_TYPES[kind].from_dict(body)
            )
        return registry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({len(self._instruments)} series)"


def _parse_series_key(key: str) -> Tuple[str, LabelKey]:
    """Inverse of :func:`series_key` (labels come back as strings)."""
    if "{" not in key:
        return key, ()
    if not key.endswith("}"):
        raise ValueError(f"malformed series key {key!r}")
    name, _, rendered = key[:-1].partition("{")
    labels = []
    for part in rendered.split(","):
        label, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed label {part!r} in series key {key!r}")
        labels.append((label, value))
    return name, tuple(sorted(labels))


#: The process-wide default registry, for callers without a scoped one.
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (the engine uses per-run scopes instead)."""
    return _GLOBAL
