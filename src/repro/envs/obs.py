"""Observation builders: session snapshots → fixed-size float vectors.

A builder turns the engine-agnostic
:class:`~repro.simulation.session.SessionObservation` into the numeric
observation a policy network consumes.  Builders are registered in
:data:`OBS_BUILDERS` and selected by name when constructing an
:class:`~repro.envs.env.IncentiveEnv`, so experiments can swap
featurisations without touching the env.

Every feature is clipped to ``[0, 1]`` — budgets can overshoot in the
round Eq. 8 finally trips, demand factors are unbounded above — so the
declared observation space is honest and ``check_env`` passes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.levels import DemandLevels
from repro.registry import Registry
from repro.simulation.config import SimulationConfig
from repro.simulation.session import SessionObservation
from repro.envs.spaces import box

#: Registry of observation builders, addressable by ``obs=`` name.
OBS_BUILDERS: Registry["ObsBuilder"] = Registry("observation builder")


class ObsBuilder:
    """Interface: declare a space for a config, then build vectors in it."""

    name: str = ""

    def space(self, config: SimulationConfig):
        raise NotImplementedError

    def build(
        self, observation: SessionObservation, config: SimulationConfig
    ) -> np.ndarray:
        raise NotImplementedError


def _scalars(observation: SessionObservation, config: SimulationConfig) -> list:
    """The five run-state scalars every builder shares, each in [0, 1]."""
    n_tasks = max(1, len(observation.tasks))
    return [
        observation.round_no / max(1, observation.rounds_total),
        observation.total_paid / max(1e-9, observation.budget),
        observation.completeness,
        observation.n_active_tasks / n_tasks,
        observation.n_published_tasks / n_tasks,
    ]


@OBS_BUILDERS.register
class CompactObsBuilder(ObsBuilder):
    """Just the run-state scalars: round progress, spend fraction,
    completeness, active/published task fractions."""

    name = "compact"

    SIZE = 5

    def space(self, config: SimulationConfig):
        return box(self.SIZE)

    def build(self, observation, config) -> np.ndarray:
        vec = np.asarray(_scalars(observation, config), dtype=np.float32)
        return np.clip(vec, 0.0, 1.0)


@OBS_BUILDERS.register
class DemandLevelObsBuilder(ObsBuilder):
    """The default featurisation: run-state scalars + the demand-level
    histogram.

    The histogram buckets the mechanism's per-task demand factors (Eq. 5)
    into ``config.level_count`` uniform-width [0, 1] bins via
    :meth:`DemandLevels.level_of` — the exact Table III partition the
    paper's AHP pricing acts on — handed to the learned policy as level
    occupancy fractions.
    """

    name = "demand-levels"

    def space(self, config: SimulationConfig):
        return box(CompactObsBuilder.SIZE + config.level_count)

    def build(self, observation, config) -> np.ndarray:
        features = _scalars(observation, config)
        histogram = np.zeros(config.level_count, dtype=np.float64)
        demands = observation.demands
        if demands:
            levels = DemandLevels(config.level_count)
            values = np.fromiter(demands.values(), dtype=float)
            # Demands are normalised upstream; clip float slack so a
            # 1+eps never trips level_of's range check.
            values = np.clip(values, 0.0, 1.0)
            for level in levels.levels_array(values):
                histogram[level - 1] += 1.0
            histogram /= len(demands)
        vec = np.asarray(features + histogram.tolist(), dtype=np.float32)
        return np.clip(vec, 0.0, 1.0)


#: Names, in registration order (for CLI help and docs).
OBS_BUILDER_NAMES: Tuple[str, ...] = OBS_BUILDERS.available()
