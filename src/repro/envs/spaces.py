"""Observation/action spaces, with or without Gymnasium installed.

The training environment (:class:`~repro.envs.env.IncentiveEnv`) is
Gymnasium-*compatible*, not Gymnasium-*dependent*: when ``gymnasium``
imports, spaces are real ``gymnasium.spaces.Box`` instances (so
``gymnasium.utils.env_checker.check_env`` passes); when it does not,
:class:`Box` below is a structural stand-in with the same ``shape`` /
``dtype`` / ``low`` / ``high`` / ``sample`` / ``contains`` surface, and
everything in :mod:`repro.envs` keeps working.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised only where gymnasium is installed
    import gymnasium as _gymnasium
except ImportError:  # pragma: no cover - the baked image has no gymnasium
    _gymnasium = None

#: The imported gymnasium module, or None (the single availability probe
#: the rest of repro.envs keys off).
GYMNASIUM = _gymnasium

HAVE_GYMNASIUM = GYMNASIUM is not None


class Box:
    """A minimal ``gymnasium.spaces.Box`` stand-in (bounded float array).

    Implements the structural subset the env and its tests rely on:
    ``shape``/``dtype``/``low``/``high``, membership via
    :meth:`contains`, and seeded :meth:`sample`.
    """

    def __init__(self, low: float, high: float, shape: Tuple[int, ...], dtype=np.float32):
        self.dtype = np.dtype(dtype)
        self.shape = tuple(shape)
        self.low = np.full(self.shape, low, dtype=self.dtype)
        self.high = np.full(self.shape, high, dtype=self.dtype)
        self._rng = np.random.default_rng(0)

    def seed(self, seed: Optional[int] = None) -> None:
        self._rng = np.random.default_rng(seed)

    def sample(self) -> np.ndarray:
        draw = self._rng.uniform(self.low, self.high, size=self.shape)
        return draw.astype(self.dtype)

    def contains(self, x) -> bool:
        arr = np.asarray(x)
        return (
            arr.shape == self.shape
            and bool(np.all(np.isfinite(arr)))
            and bool(np.all(arr >= self.low - 1e-6))
            and bool(np.all(arr <= self.high + 1e-6))
        )

    def __contains__(self, x) -> bool:
        return self.contains(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box({float(self.low.flat[0])}, {float(self.high.flat[0])}, {self.shape})"


def box(size: int, low: float = 0.0, high: float = 1.0):
    """A 1-D float32 box — gymnasium's when available, the shim's else.

    Both observation builders and action adapters declare their spaces
    through this helper, so the env's ``observation_space`` /
    ``action_space`` are genuine Gymnasium spaces exactly when Gymnasium
    can consume them.
    """
    if HAVE_GYMNASIUM:
        return GYMNASIUM.spaces.Box(
            low=low, high=high, shape=(size,), dtype=np.float32
        )
    return Box(low, high, (size,), dtype=np.float32)
