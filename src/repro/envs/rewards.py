"""Per-round reward functions for the incentive-policy environment.

A reward function scores one environment step from the observation pair
around it and the round's record — no engine access, so every function
is a pure, replayable function of the public step data.  Registered in
:data:`REWARD_FUNCTIONS` and selected by name on the env.
"""

from __future__ import annotations

from typing import Tuple

from repro.registry import Registry
from repro.simulation.events import RoundRecord
from repro.simulation.session import SessionObservation

#: Registry of per-round reward functions, addressable by ``reward=`` name.
REWARD_FUNCTIONS: Registry["RewardFunction"] = Registry("reward function")


class RewardFunction:
    """Interface: score the transition ``prev_obs --record--> obs``."""

    name: str = ""

    def score(
        self,
        prev_obs: SessionObservation,
        record: RoundRecord,
        obs: SessionObservation,
    ) -> float:
        raise NotImplementedError


@REWARD_FUNCTIONS.register
class CompletenessDeltaReward(RewardFunction):
    """The round's gain in mean task completeness (the Fig. 7 metric).

    Telescopes over an episode to the final completeness, so maximising
    per-round reward and maximising the paper's headline metric agree.
    """

    name = "completeness-delta"

    def score(self, prev_obs, record, obs) -> float:
        return obs.completeness - prev_obs.completeness


@REWARD_FUNCTIONS.register
class PlatformUtilityReward(RewardFunction):
    """Completeness gain minus a spend penalty.

    Args:
        spend_weight: dollars-to-completeness exchange rate; the round's
            payout as a budget fraction is charged at this weight.  The
            default 0.1 makes a full-budget episode cost 0.1 reward —
            noticeable without dominating the completeness term.
    """

    name = "platform-utility"

    def __init__(self, spend_weight: float = 0.1):
        self.spend_weight = float(spend_weight)

    def score(self, prev_obs, record, obs) -> float:
        gain = obs.completeness - prev_obs.completeness
        spend_fraction = record.total_paid / max(1e-9, prev_obs.budget)
        return gain - self.spend_weight * spend_fraction


#: Names, in registration order (for CLI help and docs).
REWARD_FUNCTION_NAMES: Tuple[str, ...] = REWARD_FUNCTIONS.available()
