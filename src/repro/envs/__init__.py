"""Learned incentive policies: a Gymnasium-style training environment.

The paper fixes the incentive mechanism's knobs — AHP weights (Table I),
the reward ladder step :math:`\\lambda` (Eq. 7), the demand-level
partition (Table III) — for a whole run.  This package turns them into
per-round *actions* over the stepwise session API:

- :class:`~repro.envs.env.IncentiveEnv` — ``reset()``/``step()``
  episodes over one seeded simulation each; Gymnasium-compatible,
  Gymnasium-optional.
- :mod:`~repro.envs.obs` — pluggable observation builders
  (:data:`OBS_BUILDERS`).
- :mod:`~repro.envs.actions` — pluggable action adapters
  (:data:`ACTION_ADAPTERS`) with Eq. 9-safe clamping.
- :mod:`~repro.envs.rewards` — pluggable per-round reward functions
  (:data:`REWARD_FUNCTIONS`).

Trained policies leave the env through
``MECHANISMS["policy"]`` (:class:`~repro.core.mechanisms.policy.
PolicyMechanism`), which wraps any callable policy as a regular
mechanism — so a tuned policy runs through the comparison harness, the
parallel runner, and the job server exactly like the paper baselines.
"""

from repro.envs.env import IncentiveEnv
from repro.envs.obs import OBS_BUILDERS, OBS_BUILDER_NAMES, ObsBuilder
from repro.envs.actions import (
    ACTION_ADAPTERS,
    ACTION_ADAPTER_NAMES,
    ActionAdapter,
)
from repro.envs.rewards import (
    REWARD_FUNCTIONS,
    REWARD_FUNCTION_NAMES,
    RewardFunction,
)
from repro.envs.spaces import HAVE_GYMNASIUM, Box, box

__all__ = [
    "IncentiveEnv",
    "ObsBuilder",
    "OBS_BUILDERS",
    "OBS_BUILDER_NAMES",
    "ActionAdapter",
    "ACTION_ADAPTERS",
    "ACTION_ADAPTER_NAMES",
    "RewardFunction",
    "REWARD_FUNCTIONS",
    "REWARD_FUNCTION_NAMES",
    "HAVE_GYMNASIUM",
    "Box",
    "box",
]
