"""Action adapters: policy outputs → validated incentive actions.

An adapter maps a raw ``[0, 1]`` action vector (what an RL policy emits)
onto the mechanism-level incentive action consumed by
:func:`~repro.core.mechanisms.policy.apply_incentive_action` — AHP
weight simplexes, the Eq. 7 ladder step :math:`\\lambda`, the Table III
level count.  Validation happens here (shape, finiteness) and clamping
happens in two layers: the adapter clips raw components into ``[0, 1]``
and maps them onto sane mechanism ranges, and
``apply_incentive_action`` re-clamps against the Eq. 9 feasibility
invariant (the base reward must stay positive).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.registry import Registry
from repro.simulation.config import SimulationConfig
from repro.envs.spaces import box

#: Registry of action adapters, addressable by ``actions=`` name.
ACTION_ADAPTERS: Registry["ActionAdapter"] = Registry("action adapter")


class ActionAdapter:
    """Interface: declare an action space, then decode raw vectors."""

    name: str = ""
    #: Raw action vector length.
    size: int = 0

    def space(self, config: SimulationConfig):
        return box(self.size)

    def to_action(self, raw, config: SimulationConfig) -> Dict[str, Any]:
        """Decode a raw vector into an incentive-action mapping.

        Raises:
            ValueError: wrong shape or non-finite components (the env
                refuses the step; nothing is applied).
        """
        raise NotImplementedError

    def _validated(self, raw) -> np.ndarray:
        arr = np.asarray(raw, dtype=np.float64).reshape(-1)
        if arr.shape != (self.size,):
            raise ValueError(
                f"{self.name!r} actions have shape ({self.size},), "
                f"got {np.asarray(raw).shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise ValueError(
                f"{self.name!r} action contains non-finite values: {arr}"
            )
        return np.clip(arr, 0.0, 1.0)


@ACTION_ADAPTERS.register
class WeightVectorAdapter(ActionAdapter):
    """Retune the three AHP demand weights (Table I) each round.

    The raw triple is clipped to ``[0, 1]`` and normalised onto the
    simplex by ``apply_incentive_action``; an all-zero triple is nudged
    to uniform rather than rejected (RL exploration emits corners).
    """

    name = "weights"
    size = 3

    def to_action(self, raw, config) -> Dict[str, Any]:
        arr = self._validated(raw)
        if arr.sum() <= 0.0:
            arr = np.full(self.size, 1.0 / self.size)
        return {"weights": arr.tolist()}


@ACTION_ADAPTERS.register
class RewardStepAdapter(ActionAdapter):
    """Retune the reward ladder step :math:`\\lambda` (Eq. 7).

    The unit interval maps onto ``[0.25, 4] x config.reward_step`` —
    a quarter to four times the paper's increment, a range wide enough
    to matter and narrow enough to keep Eq. 9 feasible for the presets.
    """

    name = "reward-step"
    size = 1

    LOW, HIGH = 0.25, 4.0

    def to_action(self, raw, config) -> Dict[str, Any]:
        (fraction,) = self._validated(raw)
        scale = self.LOW + fraction * (self.HIGH - self.LOW)
        return {"reward_step": scale * config.reward_step}


@ACTION_ADAPTERS.register
class LevelCountAdapter(ActionAdapter):
    """Repartition the demand levels: N from 1 to twice the config's."""

    name = "level-count"
    size = 1

    def to_action(self, raw, config) -> Dict[str, Any]:
        (fraction,) = self._validated(raw)
        top = max(1, 2 * config.level_count)
        count = 1 + int(round(fraction * (top - 1)))
        return {"level_count": count}


@ACTION_ADAPTERS.register
class IncentiveVectorAdapter(ActionAdapter):
    """The default full action: weights + ladder step + level count.

    Components: ``[w_deadline, w_progress, w_scarcity, step, levels]``,
    decoded by the three single-knob adapters above.
    """

    name = "incentive"
    size = 5

    def __init__(self):
        self._weights = WeightVectorAdapter()
        self._step = RewardStepAdapter()
        self._levels = LevelCountAdapter()

    def to_action(self, raw, config) -> Dict[str, Any]:
        arr = self._validated(raw)
        action = self._weights.to_action(arr[:3], config)
        action.update(self._step.to_action(arr[3:4], config))
        action.update(self._levels.to_action(arr[4:5], config))
        return action


#: Names, in registration order (for CLI help and docs).
ACTION_ADAPTER_NAMES: Tuple[str, ...] = ACTION_ADAPTERS.available()
