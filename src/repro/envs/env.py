"""The Gymnasium-style incentive-policy environment.

One episode = one seeded simulation.  Each ``step`` retunes the
incentive mechanism's knobs (the action), plays exactly one sensing
round through a :class:`~repro.simulation.session.SimulationSession`,
and scores the transition.  The env is Gymnasium-*compatible*: with
``gymnasium`` installed it subclasses ``gymnasium.Env`` and passes
``check_env``; without it, it is a plain class with the identical
``reset()``/``step()``/``close()`` protocol and shim spaces
(:mod:`repro.envs.spaces`), so training and evaluation code runs on the
baked toolchain with no extra dependency.

Determinism: a reset with an explicit seed pins the episode's world,
mobility, and arrival randomness exactly as
:func:`~repro.api.simulate` would — the same seed and action sequence
replay the same rewards and the same
:func:`~repro.simulation.events.result_fingerprint`.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.simulation.config import SimulationConfig
from repro.simulation.events import SimulationResult, result_fingerprint
from repro.simulation.session import SessionObservation, SimulationSession
from repro.envs.actions import ACTION_ADAPTERS, ActionAdapter
from repro.envs.obs import OBS_BUILDERS, ObsBuilder
from repro.envs.rewards import REWARD_FUNCTIONS, RewardFunction
from repro.envs.spaces import GYMNASIUM, HAVE_GYMNASIUM

if HAVE_GYMNASIUM:  # pragma: no cover - the baked image has no gymnasium
    _EnvBase = GYMNASIUM.Env
else:
    _EnvBase = object


def _resolve(registry, spec, interface):
    """str / {"name": ...} / instance → an instance from ``registry``."""
    if isinstance(spec, str):
        return registry.create(spec)
    if isinstance(spec, Mapping):
        kwargs = dict(spec)
        try:
            name = kwargs.pop("name")
        except KeyError:
            raise ValueError(
                f"a {registry.kind} mapping needs a 'name' key, got {spec!r}"
            ) from None
        return registry.create(name, **kwargs)
    if isinstance(spec, interface):
        return spec
    raise TypeError(
        f"expected a {registry.kind} name, mapping, or instance; "
        f"got {type(spec).__name__}"
    )


class IncentiveEnv(_EnvBase):
    """Train incentive policies against the paper's simulation.

    Args:
        config: the episode parameterisation (default: the paper's
            Section VI constants).  ``reset(seed=...)`` overrides only
            the seed.
        obs: observation builder — a :data:`~repro.envs.obs.OBS_BUILDERS`
            name, a ``{"name": ...}`` mapping, or an instance.
        actions: action adapter, same spellings over
            :data:`~repro.envs.actions.ACTION_ADAPTERS`.
        reward: reward function, same spellings over
            :data:`~repro.envs.rewards.REWARD_FUNCTIONS`.
        workers: select-phase worker count, forwarded to the session
            (requires ``config.engine == "batched"``).

    The declared ``observation_space`` / ``action_space`` are real
    Gymnasium ``Box`` spaces when Gymnasium imports, shim boxes
    otherwise; either way actions are float vectors in ``[0, 1]`` and
    observations are float32 vectors in ``[0, 1]``.
    """

    metadata: Dict[str, Any] = {"render_modes": []}
    render_mode = None

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        *,
        obs: Union[str, Mapping, ObsBuilder] = "demand-levels",
        actions: Union[str, Mapping, ActionAdapter] = "incentive",
        reward: Union[str, Mapping, RewardFunction] = "completeness-delta",
        workers: Optional[int] = None,
    ):
        self.config = config if config is not None else SimulationConfig()
        self.obs_builder = _resolve(OBS_BUILDERS, obs, ObsBuilder)
        self.action_adapter = _resolve(ACTION_ADAPTERS, actions, ActionAdapter)
        self.reward_function = _resolve(REWARD_FUNCTIONS, reward, RewardFunction)
        self.workers = workers
        self.observation_space = self.obs_builder.space(self.config)
        self.action_space = self.action_adapter.space(self.config)
        self._session: Optional[SimulationSession] = None
        self._last_snapshot: Optional[SessionObservation] = None

    # -- protocol --------------------------------------------------------

    def reset(
        self, *, seed: Optional[int] = None, options: Optional[dict] = None
    ) -> Tuple[np.ndarray, dict]:
        """Open a fresh episode; returns ``(observation, info)``.

        Args:
            seed: overrides the config's seed for this and subsequent
                episodes (Gymnasium semantics: seeding persists until
                the next explicit seed).
            options: unused (accepted for protocol compatibility).
        """
        if HAVE_GYMNASIUM:  # seeds self.np_random for wrappers that use it
            super().reset(seed=seed, options=options)
        if seed is not None:
            self.config = self.config.with_overrides(seed=int(seed))
        if self._session is not None:
            self._session.close()
        self._session = SimulationSession(self.config, workers=self.workers)
        snapshot = self._session.observe()
        self._last_snapshot = snapshot
        observation = self.obs_builder.build(snapshot, self.config)
        return observation, self._info(snapshot)

    def step(self, action) -> Tuple[np.ndarray, float, bool, bool, dict]:
        """Apply one action, play one round; the Gymnasium 5-tuple.

        Returns:
            ``(observation, reward, terminated, truncated, info)`` —
            ``terminated`` when the simulation's horizon is exhausted or
            every task resolved; ``truncated`` is always False (the
            horizon *is* the episode).

        Raises:
            RuntimeError: before the first :meth:`reset`, or after the
                episode terminated.
            ValueError: for a malformed action vector (nothing steps).
        """
        session = self._session
        if session is None:
            raise RuntimeError("call reset() before step()")
        if session.finished:
            raise RuntimeError("episode finished; call reset()")
        incentive_action = self.action_adapter.to_action(action, self.config)
        record = session.step(incentive_action)
        snapshot = session.observe()
        reward = float(
            self.reward_function.score(self._last_snapshot, record, snapshot)
        )
        self._last_snapshot = snapshot
        observation = self.obs_builder.build(snapshot, self.config)
        info = self._info(snapshot)
        info["paid"] = record.total_paid
        info["measurements"] = record.measurement_count
        info["applied_action"] = incentive_action
        return observation, reward, session.finished, False, info

    def close(self) -> None:
        """Release the episode's engine (idempotent)."""
        if self._session is not None:
            self._session.close()
            self._session = None

    # -- conveniences ----------------------------------------------------

    def result(self) -> SimulationResult:
        """The current episode's accumulated simulation result."""
        if self._session is None:
            raise RuntimeError("no episode open; call reset() first")
        return self._session.result()

    def fingerprint(self) -> str:
        """The deterministic digest of the current episode's history."""
        return result_fingerprint(self.result())

    def _info(self, snapshot: SessionObservation) -> dict:
        return {
            "round_no": snapshot.round_no,
            "rounds_total": snapshot.rounds_total,
            "budget_remaining": snapshot.budget_remaining,
            "completeness": snapshot.completeness,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncentiveEnv(obs={self.obs_builder.name!r}, "
            f"actions={self.action_adapter.name!r}, "
            f"reward={self.reward_function.name!r}, "
            f"seed={self.config.seed})"
        )
