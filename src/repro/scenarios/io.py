"""Scenario files: TOML/JSON load and dump, plus name-or-path resolution.

The on-disk shape mirrors :meth:`ScenarioSpec.to_mapping`::

    name = "evening-run"
    description = "..."

    [config]
    n_users = 500
    arrival = "poisson"
    deadline_range = [3, 10]

    [[config.population]]
    name = "commuters"
    fraction = 0.4
    mobility = "stationary"

TOML reading prefers the stdlib ``tomllib`` (3.11+); on older
interpreters a minimal built-in parser covers the dialect this module
itself writes (bare keys, JSON-shaped scalar/array values, ``[table]``
and ``[[array-of-tables]]`` headers) — enough for every scenario file
the library produces, with a named error for anything fancier.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

try:  # pragma: no cover - exercised per interpreter version
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - python < 3.11
    tomllib = None

from repro.scenarios.presets import get_preset
from repro.scenarios.spec import ScenarioSpec


# -- minimal TOML (fallback reader + the writer) -------------------------


def _parse_toml_minimal(text: str, source: str = "<string>") -> Dict[str, Any]:
    """Parse the restricted TOML dialect :func:`dumps_toml` emits."""
    root: Dict[str, Any] = {}
    current = root
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise ValueError(f"{source}:{lineno}: malformed table header {line!r}")
            current = _enter(root, line[2:-2].strip(), array=True)
        elif line.startswith("["):
            if not line.endswith("]"):
                raise ValueError(f"{source}:{lineno}: malformed table header {line!r}")
            current = _enter(root, line[1:-1].strip(), array=False)
        elif "=" in line:
            key, _, value = line.partition("=")
            current[key.strip()] = _parse_value(value.strip(), source, lineno)
        else:
            raise ValueError(f"{source}:{lineno}: cannot parse line {line!r}")
    return root


def _enter(root: Dict[str, Any], dotted: str, array: bool) -> Dict[str, Any]:
    """Resolve a ``[a.b]`` / ``[[a.b]]`` header to its table dict."""
    parts = [part.strip() for part in dotted.split(".")]
    node: Dict[str, Any] = root
    for part in parts[:-1]:
        node = node.setdefault(part, {})
        if isinstance(node, list):  # descend into the latest array entry
            node = node[-1]
    leaf = parts[-1]
    if array:
        entries = node.setdefault(leaf, [])
        entries.append({})
        return entries[-1]
    return node.setdefault(leaf, {})


def _parse_value(raw: str, source: str, lineno: int) -> Any:
    """One scalar/array value.  The dialect is JSON-compatible by design."""
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        raise ValueError(
            f"{source}:{lineno}: cannot parse value {raw!r} (the built-in "
            f"TOML reader covers JSON-shaped scalars and arrays only; "
            f"install python >= 3.11 for full TOML)"
        ) from None


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        text = repr(value)
        return text if any(c in text for c in ".einf") else text + ".0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(item) for item in value) + "]"
    raise ValueError(f"cannot write {type(value).__name__} value {value!r} as TOML")


def dumps_toml(mapping: Dict[str, Any]) -> str:
    """Serialize a spec mapping as TOML (the dialect the reader covers)."""
    lines: List[str] = []
    _dump_table(mapping, prefix="", lines=lines)
    return "\n".join(lines) + "\n"


def _dump_table(table: Dict[str, Any], prefix: str, lines: List[str]) -> None:
    nested_tables = {}
    table_arrays = {}
    for key, value in table.items():
        if isinstance(value, dict):
            nested_tables[key] = value
        elif (
            isinstance(value, (list, tuple))
            and value
            and all(isinstance(item, dict) for item in value)
        ):
            table_arrays[key] = value
        else:
            lines.append(f"{key} = {_format_value(value)}")
    for key, value in nested_tables.items():
        path = f"{prefix}.{key}" if prefix else key
        if not value:
            continue  # empty tables carry no information
        lines.append("")
        lines.append(f"[{path}]")
        _dump_table(value, path, lines)
    for key, entries in table_arrays.items():
        path = f"{prefix}.{key}" if prefix else key
        for entry in entries:
            lines.append("")
            lines.append(f"[[{path}]]")
            _dump_table(entry, path, lines)


# -- files ---------------------------------------------------------------


def load_spec(path: Union[str, Path]) -> ScenarioSpec:
    """Load a scenario file (``.toml`` or ``.json``).

    Raises:
        ValueError: for an unrecognised extension or an invalid spec.
        FileNotFoundError: if the file does not exist.
    """
    path = Path(path)
    text = path.read_text()
    suffix = path.suffix.lower()
    if suffix == ".json":
        mapping = json.loads(text)
    elif suffix == ".toml":
        if tomllib is not None:
            mapping = tomllib.loads(text)
        else:
            mapping = _parse_toml_minimal(text, source=str(path))
    else:
        raise ValueError(
            f"{path}: unrecognised scenario extension {suffix!r} "
            f"(expected .toml or .json)"
        )
    return ScenarioSpec.from_mapping(mapping)


def save_spec(spec: ScenarioSpec, path: Union[str, Path]) -> Path:
    """Write a spec as ``.toml`` or ``.json`` (by extension; parents made)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mapping = spec.to_mapping()
    suffix = path.suffix.lower()
    if suffix == ".json":
        path.write_text(json.dumps(mapping, indent=2) + "\n")
    elif suffix == ".toml":
        path.write_text(dumps_toml(mapping))
    else:
        raise ValueError(
            f"{path}: unrecognised scenario extension {suffix!r} "
            f"(expected .toml or .json)"
        )
    return path


def load_scenario(source: Union[str, Path]) -> ScenarioSpec:
    """Resolve a scenario from a preset name or a spec file path.

    Anything ending in ``.toml``/``.json`` (or naming an existing file)
    loads as a file; everything else is looked up among the built-in
    presets.

    >>> load_scenario("paper-2018").config["n_users"]
    100
    """
    text = str(source)
    if text.lower().endswith((".toml", ".json")) or Path(text).exists():
        return load_spec(text)
    return get_preset(text)
