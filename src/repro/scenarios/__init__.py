"""Scenario subsystem: declarative, named, file-loadable worlds.

- :class:`~repro.scenarios.spec.ScenarioSpec` — a validated (name,
  description, config-overrides) triple.
- :mod:`~repro.scenarios.presets` — built-ins from ``paper-2018`` to
  ``city-50k``.
- :func:`~repro.scenarios.io.load_scenario` — resolve a preset name or
  a ``.toml``/``.json`` spec file.
"""

from repro.scenarios.io import dumps_toml, load_scenario, load_spec, save_spec
from repro.scenarios.presets import PRESETS, get_preset, preset_names
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "PRESETS",
    "ScenarioSpec",
    "dumps_toml",
    "get_preset",
    "load_scenario",
    "load_spec",
    "preset_names",
    "save_spec",
]
