"""Declarative scenario specs: named worlds as data, not code.

A :class:`ScenarioSpec` is a (name, description, config-overrides)
triple.  The overrides are :class:`~repro.simulation.config.
SimulationConfig` fields — arrival streams, population groups, engine
selection and all — so a scenario file can describe anything the
simulator can run, and the spec validates eagerly by building the
config once at construction time.

Specs are data all the way down (strings, numbers, lists, string-keyed
mappings), which is what makes them losslessly round-trippable through
TOML/JSON (:mod:`repro.scenarios.io`) and safely shareable between the
CLI, the experiment runner, and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from repro.simulation.config import SimulationConfig

#: Config keys whose values are 2-tuples in :class:`SimulationConfig`
#: but arrive as lists from TOML/JSON.
_TUPLE_KEYS = ("deadline_range", "release_range")

_SPEC_KEYS = ("name", "description", "config")


def _coerce_overrides(config: Mapping[str, Any]) -> Dict[str, Any]:
    """TOML/JSON-shaped values -> the types SimulationConfig expects."""
    coerced: Dict[str, Any] = dict(config)
    for key in _TUPLE_KEYS:
        if key in coerced and isinstance(coerced[key], (list, tuple)):
            coerced[key] = tuple(coerced[key])
    if "population" in coerced:
        coerced["population"] = tuple(
            dict(group) for group in coerced["population"]
        )
    return coerced


def _canonical(value: Any) -> Any:
    """Tuples -> lists, recursively: the TOML/JSON-native shape."""
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, validated world description.

    Args:
        name: the scenario's identifier (shown by ``repro scenarios``).
        description: one human sentence on what the scenario models.
        config: :class:`SimulationConfig` field overrides (data-shaped:
            lists where the config holds tuples is fine).

    Raises:
        ValueError: for an empty name or overrides the config rejects
            (unknown fields are named, courtesy of ``with_overrides``).
    """

    name: str
    description: str = ""
    config: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ValueError("scenario name must be a non-empty string")
        self.to_config()  # validate eagerly: bad specs fail at load time

    def to_config(self, **overrides: Any) -> SimulationConfig:
        """The runnable config: spec overrides, then caller overrides.

        >>> ScenarioSpec("tiny", config={"n_users": 5}).to_config(seed=3).n_users
        5
        """
        merged = {**self.config, **overrides}
        return SimulationConfig().with_overrides(**_coerce_overrides(merged))

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ScenarioSpec":
        """Build from a parsed TOML/JSON document.

        Raises:
            ValueError: for missing ``name`` or unknown top-level keys.
        """
        unknown = sorted(set(mapping) - set(_SPEC_KEYS))
        if unknown:
            raise ValueError(
                f"unknown scenario key(s) {', '.join(map(repr, unknown))}; "
                f"valid keys: {', '.join(_SPEC_KEYS)}"
            )
        if "name" not in mapping:
            raise ValueError("scenario is missing the required 'name' key")
        return cls(
            name=str(mapping["name"]),
            description=str(mapping.get("description", "")),
            config=dict(mapping.get("config", {})),
        )

    def to_mapping(self) -> Dict[str, Any]:
        """The lossless inverse of :meth:`from_mapping` (tuples as lists)."""
        return {
            "name": self.name,
            "description": self.description,
            "config": _canonical(self.config),
        }
