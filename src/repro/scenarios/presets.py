"""Named scenario presets, from the paper's bench to a million-user city.

Every preset validates at import time (:class:`ScenarioSpec` builds its
config eagerly), and the property tests additionally generate each
preset's world and check its invariants.  Budgets respect Eq. 9:
``budget / total_required > step * (levels - 1)`` so the base reward
:math:`r_0` stays positive.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.scenarios.spec import ScenarioSpec

PAPER_2018 = ScenarioSpec(
    name="paper-2018",
    description=(
        "The paper's Section VI reference setup: 100 walkers, 20 tasks "
        "released at round 1, 15 rounds, AHP-weighted on-demand pricing, "
        "exact DP task selection."
    ),
    config=dict(
        n_users=100,
        n_tasks=20,
        area_side=3000.0,
        required_measurements=20,
        deadline_range=[5, 15],
        rounds=15,
        budget=1000.0,
        reward_step=0.5,
        level_count=5,
        neighbour_radius=500.0,
        user_speed=2.0,
        user_time_budget=900.0,
        cost_per_meter=0.002,
        mechanism="on-demand",
        selector="dp",
        mobility="follow-path",
    ),
)

POISSON_STREAM = ScenarioSpec(
    name="poisson-stream",
    description=(
        "Paper-sized world where most tasks are *published mid-run* as "
        "a Poisson stream (the dynamics block) on top of a small seed "
        "batch — the open-world dynamic-arrival stress case for the "
        "demand mechanism's deadline factor."
    ),
    config=dict(
        n_users=100,
        n_tasks=8,
        rounds=15,
        budget=1000.0,
        selector="dp",
        dynamics={
            "task_arrival_rate": 1.5,
            "task_deadline_range": [4, 8],
        },
    ),
)

POISSON_CHURN = ScenarioSpec(
    name="poisson-churn",
    description=(
        "Open-world churn at bench scale: users arrive as a Poisson "
        "stream and depart with a per-round hazard while tasks renew "
        "expiring deadlines — the reference scenario for the dynamics "
        "bit-identity contract (scalar = batched = sharded = resumed)."
    ),
    config=dict(
        n_users=60,
        n_tasks=10,
        rounds=10,
        budget=800.0,
        required_measurements=10,
        selector="greedy",
        engine="batched",
        dynamics={
            "user_arrival_rate": 3.0,
            "user_departure_rate": 0.05,
            "deadline_renewal_prob": 0.3,
            "max_deadline_renewals": 1,
        },
    ),
)

TASK_STREAM_2K = ScenarioSpec(
    name="task-stream-2k",
    description=(
        "CI-sized open-world stress: 2k users with mild churn and a "
        "steady mid-run task stream on a 12 km side — the dynamics "
        "benchmark scenario (churn-on vs churn-off rounds/s) and the "
        "stage for comparing on-demand vs omg-online vs incentme under "
        "an open world."
    ),
    config=dict(
        n_users=2000,
        n_tasks=40,
        area_side=12000.0,
        rounds=10,
        budget=15000.0,
        deadline_range=[3, 6],
        selector="greedy",
        engine="batched",
        distance_dtype="float32",
        stream_rounds=True,
        dynamics={
            "user_arrival_rate": 20.0,
            "user_departure_rate": 0.01,
            "task_arrival_rate": 6.0,
            "task_deadline_range": [3, 6],
        },
    ),
)

RUSH_HOUR = ScenarioSpec(
    name="rush-hour",
    description=(
        "A burst of tasks lands mid-run on a heterogeneous crowd: half "
        "are stationary commuters, a fifth are fast cyclists wandering "
        "between rounds, the rest walk the paper's default."
    ),
    config=dict(
        n_users=150,
        n_tasks=30,
        rounds=12,
        budget=1800.0,
        arrival="burst",
        arrival_kwargs={"round_no": 5, "fraction": 0.5},
        population=[
            {
                "name": "commuters",
                "fraction": 0.5,
                "mobility": "stationary",
                "speed": [1.0, 2.0],
            },
            {
                "name": "cyclists",
                "fraction": 0.2,
                "mobility": "random-waypoint",
                "speed": [4.0, 6.0],
            },
        ],
        selector="greedy",
    ),
)

CITY_2K = ScenarioSpec(
    name="city-2k",
    description=(
        "Downsized large-scale smoke: 2k users / 200 tasks on a 12 km "
        "side, batched engine, streamed rounds — the CI-sized stand-in "
        "for city-50k."
    ),
    config=dict(
        n_users=2000,
        n_tasks=200,
        area_side=12000.0,
        rounds=8,
        budget=12000.0,
        deadline_range=[3, 8],
        arrival="poisson",
        participation_rate=0.8,
        selector="greedy",
        engine="batched",
        distance_dtype="float32",
        stream_rounds=True,
    ),
)

CITY_50K = ScenarioSpec(
    name="city-50k",
    description=(
        "City-scale stress: 50k users / 2k tasks on a 30 km side with a "
        "heterogeneous population (stationary commuters, fast couriers), "
        "Poisson task arrivals, batched engine, streamed rounds."
    ),
    config=dict(
        n_users=50_000,
        n_tasks=2000,
        area_side=30_000.0,
        rounds=10,
        budget=120_000.0,
        deadline_range=[3, 10],
        user_time_budget=600.0,
        arrival="poisson",
        participation_rate=0.6,
        population=[
            {
                "name": "commuters",
                "fraction": 0.4,
                "mobility": "stationary",
                "speed": [1.5, 2.5],
            },
            {
                "name": "couriers",
                "fraction": 0.1,
                "mobility": "random-waypoint",
                "speed": [3.0, 5.0],
            },
        ],
        selector="greedy",
        engine="batched",
        distance_dtype="float32",
        stream_rounds=True,
    ),
)

CITY_1M = ScenarioSpec(
    name="city-1m",
    description=(
        "Million-user stress: 1M users / 5k tasks on a 100 km side, "
        "mostly-stationary commuters plus roaming couriers, Poisson "
        "arrivals, batched engine with the float32 distance pipeline "
        "and streamed rounds (peak RSS stays flat in the round count; "
        "add --engine-workers to shard the select phase)."
    ),
    config=dict(
        n_users=1_000_000,
        n_tasks=5000,
        area_side=100_000.0,
        rounds=5,
        budget=600_000.0,
        deadline_range=[3, 5],
        user_time_budget=600.0,
        arrival="poisson",
        participation_rate=0.4,
        population=[
            {
                "name": "commuters",
                "fraction": 0.5,
                "mobility": "stationary",
                "speed": [1.5, 2.5],
            },
            {
                "name": "couriers",
                "fraction": 0.05,
                "mobility": "random-waypoint",
                "speed": [3.0, 5.0],
            },
        ],
        selector="greedy",
        engine="batched",
        distance_dtype="float32",
        stream_rounds=True,
    ),
)

#: Registration order is display order for ``repro scenarios``.
PRESETS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        PAPER_2018,
        POISSON_STREAM,
        POISSON_CHURN,
        TASK_STREAM_2K,
        RUSH_HOUR,
        CITY_2K,
        CITY_50K,
        CITY_1M,
    )
}


def preset_names() -> Tuple[str, ...]:
    """Every built-in scenario name, in registration order."""
    return tuple(PRESETS)


def get_preset(name: str) -> ScenarioSpec:
    """Look a preset up by name.

    Raises:
        ValueError: for an unknown name (lists the valid ones).
    """
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; valid: {', '.join(sorted(PRESETS))}"
        ) from None
