"""The paper's primary contribution: the demand-based dynamic incentive.

Submodules map one-to-one onto Section IV of the paper:

- :mod:`~repro.core.ahp` — the Analytic Hierarchy Process used to weight
  the three demand criteria (Section IV-B, Tables I/II, Eq. 6).
- :mod:`~repro.core.demand` — the demand factors X1/X2/X3 (Eq. 3–5) and
  the weighted, normalised demand indicator (Eq. 2).
- :mod:`~repro.core.levels` — the demand-level bucketing (Table III).
- :mod:`~repro.core.rewards` — the reward-update rule and budget-derived
  base reward (Eq. 7–9).
- :mod:`~repro.core.mechanisms` — the on-demand mechanism assembled from
  the above, plus the fixed and steered baselines from Section VI.
"""

from repro.core.ahp import (
    PairwiseComparisonMatrix,
    example_comparison_matrix,
    RANDOM_CONSISTENCY_INDEX,
)
from repro.core.demand import (
    DemandWeights,
    deadline_factor,
    progress_factor,
    scarcity_factor,
    DemandCalculator,
    TaskDemandInputs,
)
from repro.core.levels import DemandLevels
from repro.core.rewards import RewardSchedule
from repro.core.mechanisms import (
    MECHANISMS,
    IncentiveMechanism,
    OnDemandMechanism,
    FixedMechanism,
    SteeredMechanism,
    ProportionalDemandMechanism,
    make_mechanism,
)

__all__ = [
    "PairwiseComparisonMatrix",
    "example_comparison_matrix",
    "RANDOM_CONSISTENCY_INDEX",
    "DemandWeights",
    "deadline_factor",
    "progress_factor",
    "scarcity_factor",
    "DemandCalculator",
    "TaskDemandInputs",
    "DemandLevels",
    "RewardSchedule",
    "IncentiveMechanism",
    "OnDemandMechanism",
    "FixedMechanism",
    "SteeredMechanism",
    "ProportionalDemandMechanism",
    "MECHANISMS",
    "make_mechanism",
]
