"""The steered-crowdsensing baseline (Kawajiri et al., UbiComp 2014).

The paper compares against the steered reward rule (its Eq. 13):

.. math::  R^k_{t_i} = R_c + \\mu \\, \\Delta Q(x)

where :math:`\\Delta Q(x) = Q(x+1) - Q(x)` is the *expected quality
improvement* from the (x+1)-th measurement of a task that already has x.
The original quality model is place-centric; we use the standard
diminishing-returns form

.. math::  Q(x) = 1 - e^{-\\delta x}
           \\;\\Rightarrow\\;
           \\Delta Q(x) = e^{-\\delta x} (1 - e^{-\\delta}),

which is strictly decreasing in x — exactly the property the paper's
discussion relies on ("the reward function of steered incentive is a
decreasing function which becomes smaller and smaller as more
measurements are received").

Parameterisation: the paper uses μ = 100, δ = 0.2, Rc = 5 (rewards in
[5, 25]).  Those constants are 2–50x the on-demand reward range
(0.5–2.5), so the comparison experiments default to the *scaled* variant
μ = 10, Rc = 0.5 (rewards in (0.5, 2.31]) which preserves the shape —
highest price first, monotone decay — while keeping the mechanisms on a
comparable budget.  Use :meth:`paper_scale` for the literal constants.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.core.mechanisms.base import IncentiveMechanism, RoundView
from repro.world.generator import World


class SteeredMechanism(IncentiveMechanism):
    """Quality-improvement pricing per Eq. 13 of the paper.

    Args:
        base_reward: the additional reward :math:`R_c` every participant gets.
        quality_weight: the multiplier :math:`\\mu`.
        decay: the quality-saturation rate :math:`\\delta`.
    """

    name = "steered"

    def __init__(
        self,
        base_reward: float = 0.5,
        quality_weight: float = 10.0,
        decay: float = 0.2,
    ):
        if base_reward <= 0:
            raise ValueError(f"base_reward Rc must be positive, got {base_reward}")
        if quality_weight < 0:
            raise ValueError(f"quality_weight mu must be non-negative, got {quality_weight}")
        if decay <= 0:
            raise ValueError(f"decay delta must be positive, got {decay}")
        self.base_reward = base_reward
        self.quality_weight = quality_weight
        self.decay = decay

    @classmethod
    def paper_scale(cls) -> "SteeredMechanism":
        """The literal Section VI constants: μ=100, δ=0.2, Rc=5 (rewards ≈ [5, 25])."""
        return cls(base_reward=5.0, quality_weight=100.0, decay=0.2)

    # -- quality model -----------------------------------------------------

    def quality(self, measurements: int) -> float:
        """:math:`Q(x) = 1 - e^{-\\delta x}`, the saturating task quality."""
        if measurements < 0:
            raise ValueError(f"measurements must be non-negative, got {measurements}")
        return 1.0 - math.exp(-self.decay * measurements)

    def quality_improvement(self, measurements: int) -> float:
        """:math:`\\Delta Q(x) = Q(x+1) - Q(x)`, strictly decreasing in x."""
        return self.quality(measurements + 1) - self.quality(measurements)

    def reward_for(self, measurements: int) -> float:
        """Eq. 13: :math:`R_c + \\mu \\Delta Q(x)` for a task with x measurements."""
        return self.base_reward + self.quality_weight * self.quality_improvement(
            measurements
        )

    # -- mechanism interface ---------------------------------------------------

    def initialize(self, world: World, rng: np.random.Generator) -> None:
        # Stateless: prices derive entirely from task progress.
        return None

    def rewards(self, view: RoundView) -> Dict[int, float]:
        prices = {
            task.task_id: self.reward_for(task.received)
            for task in view.active_tasks
        }
        return self._require_all_tasks(prices, view.active_tasks)
