"""Incentive actions and the ``policy`` mechanism: pricing knobs as inputs.

The paper fixes the AHP weight vector (Table I), the per-level increment
:math:`\\lambda` (Eq. 7) and the demand-level partition (Table III) at
design time.  This module turns those three choices into *actions* that
can be applied between rounds:

- :func:`apply_incentive_action` — validate, clamp, and apply one action
  mapping (``weights`` / ``reward_step`` / ``level_count``) to an
  on-demand-style mechanism, rebuilding its :class:`DemandCalculator`
  and :class:`RewardSchedule` while preserving the Eq. 9 budget
  feasibility invariant (:math:`r_0 > 0`).
- :class:`PolicyMechanism` — registered as ``MECHANISMS["policy"]``: an
  :class:`OnDemandMechanism` steered by a callable policy that is asked
  for an action before every round's pricing.  Because it is an
  ordinary registry entry with JSON-expressible kwargs, a trained or
  black-box policy runs through the comparison harness, the parallel
  runner, and ``repro jobs submit`` unchanged.
- :data:`POLICIES` — named, constructor-kwarg policies (``static``,
  ``fixed-weights``, ``step-decay``) so a policy is addressable from a
  config file or a job submission, where a bare callable cannot travel.

Everything here is deterministic: policies see only a
:class:`PolicyContext` snapshot and never touch the random streams, so
the same seed and the same policy give the same trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.demand import DemandCalculator, DemandWeights
from repro.core.levels import DemandLevels
from repro.core.mechanisms.base import IncentiveMechanism, RoundView
from repro.core.mechanisms.on_demand import OnDemandMechanism
from repro.core.rewards import RewardSchedule
from repro.registry import Registry
from repro.world.generator import World

#: The action keys :func:`apply_incentive_action` understands.
ACTION_KEYS = ("weights", "reward_step", "level_count")

#: Floor on the base reward as a fraction of the per-measurement budget
#: share (Eq. 9's ``B / sum(phi)``): clamping never drives :math:`r_0`
#: to zero, so every published price stays strictly positive.
MIN_BASE_FRACTION = 1e-3

#: An action is any mapping over :data:`ACTION_KEYS`; ``None`` means
#: "leave the mechanism alone this round".
IncentiveAction = Optional[Mapping[str, Any]]


def _normalized_weights(raw: Sequence[float]) -> DemandWeights:
    """Clamp negatives to zero and normalise to the Eq. 2 simplex.

    Raises:
        ValueError: for a wrong-length vector, non-finite entries, or an
            all-zero vector (there is no direction to normalise).
    """
    values = np.asarray(raw, dtype=float).reshape(-1)
    if values.shape != (3,):
        raise ValueError(
            f"weights action needs 3 values (deadline, progress, scarcity), "
            f"got shape {values.shape}"
        )
    if not np.all(np.isfinite(values)):
        raise ValueError(f"weights must be finite, got {values.tolist()}")
    values = np.maximum(values, 0.0)
    total = float(values.sum())
    if total <= 0.0:
        raise ValueError(
            f"weights must have a positive sum after clamping negatives, "
            f"got {list(raw)}"
        )
    values = values / total
    return DemandWeights(
        deadline=float(values[0]),
        progress=float(values[1]),
        scarcity=float(values[2]),
    )


def apply_incentive_action(
    mechanism: IncentiveMechanism, action: IncentiveAction
) -> Dict[str, Any]:
    """Apply one validated-and-clamped action to a pricing mechanism.

    Supported keys (any subset):

    - ``weights``: 3 non-negative numbers, normalised onto the Eq. 2
      simplex (the AHP weight vector); rebuilds the mechanism's
      :class:`DemandCalculator` with its factor scales preserved.
    - ``reward_step``: the per-level increment :math:`\\lambda` (Eq. 7),
      clamped so the rebuilt Eq. 9 base reward stays positive.
    - ``level_count``: the demand-level partition size N (Table III),
      clamped to the largest budget-feasible count.

    The Eq. 9 per-measurement budget share ``r0 + lambda (N - 1)`` is an
    invariant of the rebuild: whatever the action asks for, the reward
    ladder's worst case still fits the platform budget.

    Args:
        mechanism: an initialized on-demand-style mechanism (anything
            exposing ``schedule`` / ``calculator``); wrappers may point
            ``action_target`` at the mechanism actions should reach.
        action: the action mapping, or None for a no-op.

    Returns:
        What was actually applied after clamping (empty for a no-op) —
        e.g. ``{"reward_step": 0.75}`` when the requested 2.0 was
        clamped down to keep :math:`r_0` positive.

    Raises:
        TypeError: when the action is not a mapping.
        ValueError: for unknown keys, malformed values, or a mechanism
            that has no demand-pricing knobs / is not initialized yet.
    """
    if action is None:
        return {}
    if not isinstance(action, Mapping):
        raise TypeError(
            f"an incentive action must be a mapping over {ACTION_KEYS}, "
            f"got {type(action).__name__}"
        )
    unknown = sorted(set(action) - set(ACTION_KEYS))
    if unknown:
        raise ValueError(
            f"unknown incentive action key(s) {', '.join(map(repr, unknown))}; "
            f"valid: {', '.join(ACTION_KEYS)}"
        )
    target = getattr(mechanism, "action_target", mechanism)
    schedule = getattr(target, "schedule", None)
    calculator = getattr(target, "calculator", None)
    if calculator is None:
        raise ValueError(
            f"mechanism {type(mechanism).__name__!r} has no demand "
            f"calculator; incentive actions need an on-demand-style "
            f"mechanism"
        )
    if schedule is None:
        raise ValueError(
            f"mechanism {type(mechanism).__name__!r} is not initialized "
            f"(no reward schedule yet); actions apply between rounds of "
            f"a live session"
        )

    # Validate every key BEFORE mutating anything: an action like
    # {"weights": [...], "reward_step": -1} must raise with the
    # mechanism untouched, so callers (SimulationSession.step documents
    # ValueError as "nothing is stepped") never see a half-applied
    # action or a stale price cache.
    weights: Optional[DemandWeights] = None
    if "weights" in action:
        weights = _normalized_weights(action["weights"])

    ladder: Optional[Tuple[float, int, float]] = None
    if "reward_step" in action or "level_count" in action:
        step = float(action.get("reward_step", schedule.step))
        if not np.isfinite(step) or step <= 0:
            raise ValueError(
                f"reward_step must be a positive finite number, got {step}"
            )
        count = int(action.get("level_count", schedule.levels.count))
        count = max(1, count)
        # Eq. 9 invariant: the per-measurement budget share is fixed by
        # the schedule being replaced, so the new ladder's worst case
        # costs exactly what the old one did.
        unit = schedule.base_reward + schedule.step * (schedule.levels.count - 1)
        min_base = unit * MIN_BASE_FRACTION
        if count > 1:
            max_count = 1 + int((unit - min_base) // step)
            count = max(1, min(count, max_count))
        if count > 1:
            max_step = (unit - min_base) / (count - 1)
            step = min(step, max_step)
        ladder = (step, count, unit)

    applied: Dict[str, Any] = {}
    if weights is not None:
        target.weights = weights
        target.calculator = DemandCalculator(
            weights=weights,
            deadline_scale=calculator.deadline_scale,
            progress_scale=calculator.progress_scale,
            scarcity_scale=calculator.scarcity_scale,
        )
        applied["weights"] = (
            weights.deadline, weights.progress, weights.scarcity
        )

    if ladder is not None:
        step, count, unit = ladder
        levels = DemandLevels(count)
        target.step = step
        target.levels = levels
        target.schedule = RewardSchedule(
            base_reward=unit - step * (count - 1), step=step, levels=levels
        )
        if "reward_step" in action:
            applied["reward_step"] = step
        if "level_count" in action:
            applied["level_count"] = count
    return applied


# -- policy callables ------------------------------------------------------


@dataclass(frozen=True)
class PolicyContext:
    """What a policy sees before each round's pricing (deterministic).

    The context is the platform's own knowledge: the upcoming round,
    how many tasks are up for pricing, the current reward-ladder knobs,
    and the previous round's normalised demands.  Policies never see
    the world's random streams.
    """

    round_no: int
    active_tasks: int
    budget: float
    base_reward: float
    step: float
    level_count: int
    weights: Tuple[float, float, float]
    last_demands: Mapping[int, float]


#: A policy maps the round context to an action (or None for a no-op).
PolicyFn = Callable[[PolicyContext], IncentiveAction]

#: Named policies addressable from configs and job submissions.
POLICIES: Registry[PolicyFn] = Registry("policy")


@POLICIES.register
class StaticPolicy:
    """The no-op policy: the wrapped mechanism behaves exactly as
    configured (``mechanism="policy"`` with this policy is the paper's
    on-demand mechanism, priced identically)."""

    name = "static"

    def __call__(self, context: PolicyContext) -> IncentiveAction:
        return None


@POLICIES.register
class FixedWeightsPolicy:
    """Pin the AHP weight vector to an explicit simplex point.

    The tuned-weights carrier: a random-search (or any offline
    optimiser) result travels as three JSON numbers.
    """

    name = "fixed-weights"

    def __init__(
        self,
        deadline: float = 1.0 / 3.0,
        progress: float = 1.0 / 3.0,
        scarcity: float = 1.0 / 3.0,
    ):
        # Normalise onto the Eq. 2 simplex up front: context.weights is
        # always normalised, so the __call__ no-op comparison would
        # never fire for raw kwargs like (2, 1, 1).
        weights = _normalized_weights((deadline, progress, scarcity))
        self.weights = (weights.deadline, weights.progress, weights.scarcity)

    def __call__(self, context: PolicyContext) -> IncentiveAction:
        if context.weights == self.weights:
            return None
        return {"weights": self.weights}


@POLICIES.register
class StepDecayPolicy:
    """Geometrically shrink :math:`\\lambda` each round, never below a floor.

    Early rounds keep the paper's aggressive level spread (hot tasks pay
    visibly more); late rounds flatten the ladder so the remaining
    budget spreads across stragglers.
    """

    name = "step-decay"

    def __init__(self, decay: float = 0.9, floor: float = 0.05):
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if floor <= 0:
            raise ValueError(f"floor must be positive, got {floor}")
        self.decay = float(decay)
        self.floor = float(floor)

    def __call__(self, context: PolicyContext) -> IncentiveAction:
        step = max(self.floor, context.step * self.decay)
        if step == context.step:
            return None
        return {"reward_step": step}


def resolve_policy(
    policy: Union[str, Mapping[str, Any], PolicyFn],
) -> PolicyFn:
    """A callable policy from a name, a ``{"name": ..., **kwargs}``
    mapping (the JSON-expressible forms), or a callable (used as-is).

    Raises:
        ValueError: for an unknown policy name or a mapping without a
            ``name`` key.
        TypeError: for a spec that is none of the three forms.
    """
    if isinstance(policy, str):
        return POLICIES.create(policy)
    if isinstance(policy, Mapping):
        spec = dict(policy)
        name = spec.pop("name", None)
        if not name:
            raise ValueError(
                f"a policy mapping needs a 'name' key "
                f"(valid: {', '.join(POLICIES.available())}), got {policy!r}"
            )
        return POLICIES.create(name, **spec)
    if callable(policy):
        return policy
    raise TypeError(
        f"policy must be a name, a {{'name': ...}} mapping, or a "
        f"callable, got {type(policy).__name__}"
    )


class PolicyMechanism(IncentiveMechanism):
    """``MECHANISMS["policy"]``: on-demand pricing steered by a policy.

    Before every round's pricing the policy is shown a
    :class:`PolicyContext` and may return an incentive action, which is
    applied to the wrapped :class:`OnDemandMechanism` (validated and
    clamped, see :func:`apply_incentive_action`).  With the default
    ``static`` policy the prices are bit-identical to ``on-demand``.

    All engine integration hooks (the ``batched`` vectorised-pricing
    flag, the incremental ``neighbour_counter``, ``last_demands`` /
    ``levels`` observability) delegate to the wrapped mechanism, so the
    scalar, batched, and sharded engines treat a policy-steered run
    exactly like an on-demand one.

    Args:
        policy: a registered policy name, a JSON-style ``{"name": ...}``
            mapping, or any callable ``PolicyContext -> action``.
        budget / step / levels / neighbour_radius: forwarded to the
            wrapped :class:`OnDemandMechanism` (the config wires these
            in via :meth:`SimulationConfig.mechanism_arguments`).
        **inner_kwargs: any further :class:`OnDemandMechanism` kwargs
            (comparison matrix, explicit weights, factor scales, ...).
    """

    name = "policy"

    def __init__(
        self,
        policy: Union[str, Mapping[str, Any], PolicyFn] = "static",
        budget: float = 1000.0,
        step: float = 0.5,
        levels: Optional[DemandLevels] = None,
        neighbour_radius: float = 500.0,
        **inner_kwargs: Any,
    ):
        self.policy_spec = policy
        self.policy = resolve_policy(policy)
        # The last round the policy was consulted for.  rewards() may
        # legitimately run twice in one round — session.observe() prices
        # and caches, then a session.step(action) invalidates the cache
        # and reprices — and a stateful policy (e.g. step-decay) must
        # not act twice, or the trajectory would depend on whether
        # observe() was called.
        self._last_policy_round: Optional[int] = None
        self.inner = OnDemandMechanism(
            budget=budget,
            step=step,
            levels=levels,
            neighbour_radius=neighbour_radius,
            **inner_kwargs,
        )

    # -- engine hooks, delegated to the wrapped mechanism ----------------

    @property
    def action_target(self) -> OnDemandMechanism:
        """Where :func:`apply_incentive_action` lands (the wrapped
        mechanism owns the calculator and the schedule)."""
        return self.inner

    @property
    def batched(self) -> bool:
        return self.inner.batched

    @batched.setter
    def batched(self, value: bool) -> None:
        self.inner.batched = value

    @property
    def neighbour_counter(self):
        return self.inner.neighbour_counter

    @neighbour_counter.setter
    def neighbour_counter(self, counter) -> None:
        self.inner.neighbour_counter = counter

    @property
    def neighbour_radius(self) -> float:
        return self.inner.neighbour_radius

    @property
    def levels(self) -> DemandLevels:
        return self.inner.levels

    @property
    def schedule(self) -> Optional[RewardSchedule]:
        return self.inner.schedule

    @property
    def calculator(self) -> DemandCalculator:
        return self.inner.calculator

    @property
    def weights(self) -> DemandWeights:
        return self.inner.weights

    @property
    def budget(self) -> float:
        return self.inner.budget

    @property
    def last_demands(self) -> Dict[int, float]:
        return self.inner.last_demands

    # -- mechanism interface ---------------------------------------------

    def initialize(self, world: World, rng: np.random.Generator) -> None:
        self.inner.initialize(world, rng)
        self._last_policy_round = None

    def context(self, round_no: int, active_tasks: int) -> PolicyContext:
        """The deterministic snapshot the policy is shown each round."""
        schedule = self.inner.schedule
        weights = self.inner.weights
        return PolicyContext(
            round_no=round_no,
            active_tasks=active_tasks,
            budget=self.inner.budget,
            base_reward=schedule.base_reward,
            step=schedule.step,
            level_count=schedule.levels.count,
            weights=(weights.deadline, weights.progress, weights.scarcity),
            last_demands=dict(self.inner.last_demands),
        )

    def rewards(self, view: RoundView) -> Dict[int, float]:
        if self.inner.schedule is None:
            raise RuntimeError("initialize() must be called before rewards()")
        if view.round_no != self._last_policy_round:
            self._last_policy_round = view.round_no
            action = self.policy(
                self.context(view.round_no, len(view.active_tasks))
            )
            if action is not None:
                apply_incentive_action(self.inner, action)
        return self.inner.rewards(view)
