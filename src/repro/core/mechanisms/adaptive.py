"""Extension mechanism: budget-recycling on-demand pricing.

The paper derives :math:`r_0` from the *worst case* — every measurement
of every task paid at the top level (Eq. 8–9).  In practice most
measurements are paid below the top level and some tasks expire
unfinished, so a large fraction of B is never spent (our runs leave
~50 % of the budget on the table; see `quickstart.py`).

:class:`AdaptiveBudgetMechanism` recycles that slack.  Before each round
it recomputes the schedule from the *remaining* budget and the *remaining*
required measurements:

.. math::  r_0^k = B_{remaining} / \\sum_i (\\varphi_i - \\pi_i)
           - \\lambda (N - 1)

clamped to never fall below the static Eq. 9 value (payments already made
cannot be taken back, and prices that shrink over time would reintroduce
the steered mechanism's disengagement problem).  The worst-case payout
guarantee is preserved round by round: even if every remaining
measurement were bought at the new top level, the remaining budget
covers it.

This directly addresses the paper's own motivation — "if the rewards are
set too small, there may not be enough participants" — by spending the
freed budget on the hardest remaining work, and the ablation bench shows
it buys extra completeness at low user counts for the same total budget.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.ahp import PairwiseComparisonMatrix
from repro.core.levels import DemandLevels
from repro.core.mechanisms.base import RoundView
from repro.core.mechanisms.on_demand import OnDemandMechanism
from repro.core.rewards import RewardSchedule
from repro.world.generator import World


class AdaptiveBudgetMechanism(OnDemandMechanism):
    """On-demand pricing with per-round budget recycling.

    Same constructor knobs as :class:`OnDemandMechanism`; the schedule
    is re-derived every round from remaining budget and remaining work.
    The engine reports payouts implicitly through task state, so the
    mechanism tracks its own committed spend from the prices it quoted
    and the measurements that actually landed (read off task progress).
    """

    name = "adaptive"

    def __init__(
        self,
        budget: float = 1000.0,
        step: float = 0.5,
        levels: Optional[DemandLevels] = None,
        neighbour_radius: float = 500.0,
        comparison_matrix: Optional[PairwiseComparisonMatrix] = None,
    ):
        super().__init__(
            budget=budget,
            step=step,
            levels=levels,
            neighbour_radius=neighbour_radius,
            comparison_matrix=comparison_matrix,
        )
        self._static_base: float = 0.0
        self._spent_estimate: float = 0.0
        self._last_received: Dict[int, int] = {}
        self._last_prices: Dict[int, float] = {}
        self._world: Optional[World] = None

    def initialize(self, world: World, rng: np.random.Generator) -> None:
        super().initialize(world, rng)
        self._world = world
        self._static_base = self.schedule.base_reward
        self._last_received = {t.task_id: t.received for t in world.tasks}
        self._last_prices = {}
        self._spent_estimate = 0.0

    def rewards(self, view: RoundView) -> Dict[int, float]:
        self._settle_previous_round(view)
        remaining_work = sum(
            task.required_measurements - task.received for task in view.active_tasks
        )
        if remaining_work > 0:
            remaining_budget = max(0.0, self.budget - self._spent_estimate)
            base = remaining_budget / remaining_work - self.step * (
                self.levels.count - 1
            )
            # Never price below the static schedule: prices that decay over
            # time are the steered failure mode the paper documents.
            base = max(base, self._static_base)
            self.schedule = RewardSchedule(
                base_reward=base, step=self.step, levels=self.levels
            )
        prices = super().rewards(view)
        self._last_prices = dict(prices)
        return prices

    def _settle_previous_round(self, view: RoundView) -> None:
        """Charge last round's accepted measurements at last round's prices.

        Settlement scans the *whole world*, not just the still-active
        tasks: a task that completed or expired last round must still have
        its final payouts counted, or the remaining-budget estimate would
        overshoot and the re-derived prices could break the Eq. 8
        guarantee.  Task progress is the ground truth for what was
        accepted; each new measurement on task t was paid the price
        quoted for t last round.
        """
        if self._world is None:
            return
        for task in self._world.tasks:
            before = self._last_received.get(task.task_id, 0)
            delta = task.received - before
            if delta > 0 and task.task_id in self._last_prices:
                self._spent_estimate += delta * self._last_prices[task.task_id]
            self._last_received[task.task_id] = task.received

    @property
    def committed_spend(self) -> float:
        """Payouts settled so far — trails the platform's true total only
        by the not-yet-settled current round (exact after the next
        pricing call, and checked against ``SimulationResult.total_paid``
        in the tests)."""
        return self._spent_estimate
