"""Incentive mechanisms: the contribution and the Section VI baselines.

All mechanisms share the :class:`~repro.core.mechanisms.base.IncentiveMechanism`
interface — once per simulation they see the initial world, then at the
start of every round they return a per-task reward map, which is all the
platform publishes in the WST mode (Fig. 1).

- :class:`~repro.core.mechanisms.on_demand.OnDemandMechanism` — the paper's
  demand-based dynamic incentive (Section IV).
- :class:`~repro.core.mechanisms.fixed.FixedMechanism` — a random demand
  level per task, frozen at round 1 (the paper's "fixed" baseline).
- :class:`~repro.core.mechanisms.steered.SteeredMechanism` — Kawajiri et
  al.'s steered crowdsensing reward (Eq. 13), decreasing in received
  measurements.
- :class:`~repro.core.mechanisms.proportional.ProportionalDemandMechanism`
  — ablation: continuous demand-to-reward mapping without Table III levels.
- :class:`~repro.core.mechanisms.policy.PolicyMechanism` — on-demand
  pricing steered by a callable policy (``MECHANISMS["policy"]``): the
  AHP weights, :math:`\\lambda`, and level partition become per-round
  actions (see :mod:`repro.envs` for the training environment).
"""

from repro.core.mechanisms.base import IncentiveMechanism, RoundView
from repro.core.mechanisms.on_demand import OnDemandMechanism
from repro.core.mechanisms.fixed import FixedMechanism
from repro.core.mechanisms.steered import SteeredMechanism
from repro.core.mechanisms.proportional import ProportionalDemandMechanism
from repro.core.mechanisms.adaptive import AdaptiveBudgetMechanism
from repro.core.mechanisms.policy import (
    POLICIES,
    IncentiveAction,
    PolicyContext,
    PolicyMechanism,
    apply_incentive_action,
    resolve_policy,
)
from repro.core.mechanisms.registry import MECHANISMS, MECHANISM_NAMES
from repro.core.mechanisms.factory import make_mechanism

__all__ = [
    "IncentiveMechanism",
    "RoundView",
    "OnDemandMechanism",
    "FixedMechanism",
    "SteeredMechanism",
    "ProportionalDemandMechanism",
    "AdaptiveBudgetMechanism",
    "PolicyMechanism",
    "PolicyContext",
    "IncentiveAction",
    "apply_incentive_action",
    "resolve_policy",
    "POLICIES",
    "make_mechanism",
    "MECHANISMS",
    "MECHANISM_NAMES",
]
