"""The common interface every incentive mechanism implements.

The platform side of Fig. 1 is deliberately thin: before each round it
asks the mechanism for one number per active task — the per-measurement
reward — and publishes those.  Mechanisms never see individual users'
decisions, only the aggregate round state (task progress and current user
positions), which is exactly the information the paper's platform has
after "(4) Data Upload / (5) Demand Calculate".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.world.generator import World
from repro.world.task import SensingTask


@dataclass(frozen=True)
class RoundView:
    """What the platform knows when pricing round ``round_no``.

    Args:
        round_no: the 1-based round about to start.
        active_tasks: tasks still published (not completed, not expired).
        user_locations: every user's position at the start of the round.
    """

    round_no: int
    active_tasks: Sequence[SensingTask]
    user_locations: Sequence[Point]

    def __post_init__(self) -> None:
        if self.round_no < 1:
            raise ValueError(f"round_no must be >= 1, got {self.round_no}")


class IncentiveMechanism(abc.ABC):
    """Prices sensing tasks, once per round.

    Lifecycle: the engine calls :meth:`initialize` exactly once with the
    freshly generated world, then :meth:`rewards` at the start of every
    round.  Mechanisms may keep state between rounds (the fixed baseline
    freezes its round-1 prices; the steered baseline tracks nothing — it
    reads progress off the tasks).
    """

    #: registry name, also used in experiment output rows
    name: str = "abstract"

    @abc.abstractmethod
    def initialize(self, world: World, rng: np.random.Generator) -> None:
        """Bind to a world before round 1 (derive budgets, draw any randomness)."""

    @abc.abstractmethod
    def rewards(self, view: RoundView) -> Dict[int, float]:
        """Per-measurement reward for every *active* task, keyed by task id.

        Must return a price for exactly the tasks in ``view.active_tasks``;
        the engine validates this, so a missing or extra key is an error in
        the mechanism, not a silent mispricing.
        """

    # -- helpers shared by concrete mechanisms ---------------------------

    @staticmethod
    def _require_all_tasks(
        prices: Dict[int, float], tasks: Sequence[SensingTask]
    ) -> Dict[int, float]:
        """Validate that ``prices`` covers exactly ``tasks`` with finite, positive values."""
        expected = {t.task_id for t in tasks}
        got = set(prices)
        if expected != got:
            raise ValueError(
                f"mechanism priced tasks {sorted(got)} but the round has "
                f"{sorted(expected)}"
            )
        for task_id, price in prices.items():
            if not np.isfinite(price) or price <= 0:
                raise ValueError(
                    f"reward for task {task_id} must be positive and finite, got {price}"
                )
        return prices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def active_task_list(world: World) -> List[SensingTask]:
    """The currently published tasks of a world (engine convenience)."""
    return [t for t in world.tasks if t.is_active]
