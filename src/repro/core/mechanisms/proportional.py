"""Ablation mechanism: continuous demand pricing without Table III levels.

The paper buckets normalised demand into N discrete levels before pricing
(Table III + Eq. 7).  This ablation removes the bucketing and pays

.. math::  r = r_0 + \\bar{d} \\cdot \\lambda (N - 1)

i.e. the same price range as the on-demand mechanism but linear in the
*continuous* normalised demand.  Comparing the two isolates what the
discretisation contributes (``experiments/ablations.py``).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.ahp import PairwiseComparisonMatrix
from repro.core.demand import DemandCalculator, DemandWeights, TaskDemandInputs
from repro.core.levels import DemandLevels
from repro.core.rewards import RewardSchedule
from repro.core.mechanisms.base import IncentiveMechanism, RoundView
from repro.geometry.grid_index import GridIndex
from repro.world.generator import World


class ProportionalDemandMechanism(IncentiveMechanism):
    """Demand-proportional pricing: Eq. 7 with the level function removed.

    Shares every other ingredient (AHP weights, factor functions,
    budget-derived :math:`r_0`) with :class:`OnDemandMechanism`, so any
    behavioural difference is attributable to the bucketing alone.
    """

    name = "proportional"

    def __init__(
        self,
        budget: float = 1000.0,
        step: float = 0.5,
        levels: Optional[DemandLevels] = None,
        neighbour_radius: float = 500.0,
        comparison_matrix: Optional[PairwiseComparisonMatrix] = None,
    ):
        if neighbour_radius <= 0:
            raise ValueError(
                f"neighbour_radius must be positive, got {neighbour_radius}"
            )
        self.budget = budget
        self.step = step
        self.levels = levels if levels is not None else DemandLevels(5)
        self.neighbour_radius = neighbour_radius
        self.weights = DemandWeights.from_ahp(comparison_matrix)
        self.calculator = DemandCalculator(weights=self.weights)
        self.schedule: Optional[RewardSchedule] = None

    def initialize(self, world: World, rng: np.random.Generator) -> None:
        self.schedule = RewardSchedule.from_budget(
            budget=self.budget,
            total_required_measurements=world.total_required_measurements,
            step=self.step,
            levels=self.levels,
        )

    def rewards(self, view: RoundView) -> Dict[int, float]:
        if self.schedule is None:
            raise RuntimeError("initialize() must be called before rewards()")
        tasks = list(view.active_tasks)
        if not tasks:
            return {}
        if view.user_locations:
            index = GridIndex(view.user_locations, cell_size=self.neighbour_radius)
            neighbours = index.counts_for(
                [t.location for t in tasks], self.neighbour_radius
            )
        else:
            neighbours = [0] * len(tasks)
        inputs = [
            TaskDemandInputs(
                round_no=view.round_no,
                deadline=t.deadline,
                received=t.received,
                required=t.required_measurements,
                neighbours=neighbours[i],
            )
            for i, t in enumerate(tasks)
        ]
        demands = self.calculator.demands(inputs)
        span = self.schedule.step * (self.levels.count - 1)
        prices = {
            task.task_id: self.schedule.base_reward + demand * span
            for task, demand in zip(tasks, demands)
        }
        return self._require_all_tasks(prices, tasks)
