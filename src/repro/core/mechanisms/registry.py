"""The incentive-mechanism registry: every mechanism, addressable by name.

The :data:`MECHANISMS` registry is the blessed construction surface —
``MECHANISMS.create(name, **kwargs)`` / ``MECHANISMS.available()`` —
used by the config layer (:meth:`SimulationConfig.mechanism_arguments`),
the CLI, the experiment harness, and the job service.  The legacy
:mod:`repro.core.mechanisms.factory` module is a deprecated shim that
re-exports these names.
"""

from __future__ import annotations

from repro.core.mechanisms.adaptive import AdaptiveBudgetMechanism
from repro.core.mechanisms.base import IncentiveMechanism
from repro.core.mechanisms.fixed import FixedMechanism
from repro.core.mechanisms.on_demand import OnDemandMechanism
from repro.core.mechanisms.policy import PolicyMechanism
from repro.core.mechanisms.proportional import ProportionalDemandMechanism
from repro.core.mechanisms.steered import SteeredMechanism
from repro.dynamics.online import IncentMeMechanism, OMGOnlineMechanism
from repro.registry import Registry

#: The incentive-mechanism registry (the blessed construction surface).
MECHANISMS: Registry[IncentiveMechanism] = Registry("mechanism")
for _cls in (
    OnDemandMechanism,
    FixedMechanism,
    SteeredMechanism,
    ProportionalDemandMechanism,
    AdaptiveBudgetMechanism,
    OMGOnlineMechanism,
    IncentMeMechanism,
    PolicyMechanism,
):
    MECHANISMS.register(_cls)

#: The registered mechanism names, in a stable presentation order.
MECHANISM_NAMES = MECHANISMS.available()
