"""Mechanism registry: build a mechanism from its name + keyword overrides.

Used by the CLI and the experiment harness so a mechanism is always
addressable by the short name that appears in result rows
("on-demand", "fixed", "steered", "proportional").
"""

from __future__ import annotations

from typing import Dict, Type

from repro.core.mechanisms.adaptive import AdaptiveBudgetMechanism
from repro.core.mechanisms.base import IncentiveMechanism
from repro.core.mechanisms.fixed import FixedMechanism
from repro.core.mechanisms.on_demand import OnDemandMechanism
from repro.core.mechanisms.proportional import ProportionalDemandMechanism
from repro.core.mechanisms.steered import SteeredMechanism

_REGISTRY: Dict[str, Type[IncentiveMechanism]] = {
    OnDemandMechanism.name: OnDemandMechanism,
    FixedMechanism.name: FixedMechanism,
    SteeredMechanism.name: SteeredMechanism,
    ProportionalDemandMechanism.name: ProportionalDemandMechanism,
    AdaptiveBudgetMechanism.name: AdaptiveBudgetMechanism,
}

#: The registered mechanism names, in a stable presentation order.
MECHANISM_NAMES = ("on-demand", "fixed", "steered", "proportional", "adaptive")


def make_mechanism(name: str, **kwargs) -> IncentiveMechanism:
    """Instantiate a mechanism by registry name.

    Keyword arguments are forwarded to the mechanism constructor, so e.g.
    ``make_mechanism("on-demand", budget=2000.0)`` works.

    Raises:
        ValueError: for an unknown name (message lists the valid ones).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        valid = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown mechanism {name!r}; valid: {valid}") from None
    return cls(**kwargs)
