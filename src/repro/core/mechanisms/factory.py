"""Deprecated shim over :mod:`repro.core.mechanisms.registry`.

The registry itself moved to :mod:`repro.core.mechanisms.registry`
(also re-exported by :mod:`repro.core.mechanisms`); this module stays
importable for one more release so old ``from
repro.core.mechanisms.factory import MECHANISMS`` call sites keep
working, and :func:`make_mechanism` keeps the legacy call signature
behind a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.core.mechanisms.base import IncentiveMechanism
from repro.core.mechanisms.registry import MECHANISM_NAMES, MECHANISMS

__all__ = ["MECHANISMS", "MECHANISM_NAMES", "make_mechanism"]


def make_mechanism(name: str, **kwargs) -> IncentiveMechanism:
    """Deprecated alias for ``MECHANISMS.create(name, **kwargs)``.

    Kept for one release so existing call sites keep working; new code
    should use :data:`MECHANISMS` (or ``repro.api.create_mechanism``).

    Raises:
        ValueError: for an unknown name (message lists the valid ones).
    """
    warnings.warn(
        "make_mechanism() is deprecated; use MECHANISMS.create(name, ...) "
        "from repro.core.mechanisms (or repro.api.create_mechanism)",
        DeprecationWarning,
        stacklevel=2,
    )
    return MECHANISMS.create(name, **kwargs)
