"""Mechanism registry: build a mechanism from its name + keyword overrides.

Used by the CLI and the experiment harness so a mechanism is always
addressable by the short name that appears in result rows
("on-demand", "fixed", "steered", "proportional", "adaptive").

The blessed surface is the :data:`MECHANISMS` registry
(``MECHANISMS.create(name, **kwargs)`` / ``MECHANISMS.available()``);
:func:`make_mechanism` remains as a deprecated shim with the old call
signature.
"""

from __future__ import annotations

import warnings

from repro.core.mechanisms.adaptive import AdaptiveBudgetMechanism
from repro.core.mechanisms.base import IncentiveMechanism
from repro.core.mechanisms.fixed import FixedMechanism
from repro.core.mechanisms.on_demand import OnDemandMechanism
from repro.core.mechanisms.proportional import ProportionalDemandMechanism
from repro.core.mechanisms.steered import SteeredMechanism
from repro.dynamics.online import IncentMeMechanism, OMGOnlineMechanism
from repro.registry import Registry

#: The incentive-mechanism registry (the blessed construction surface).
MECHANISMS: Registry[IncentiveMechanism] = Registry("mechanism")
for _cls in (
    OnDemandMechanism,
    FixedMechanism,
    SteeredMechanism,
    ProportionalDemandMechanism,
    AdaptiveBudgetMechanism,
    OMGOnlineMechanism,
    IncentMeMechanism,
):
    MECHANISMS.register(_cls)

#: The registered mechanism names, in a stable presentation order.
MECHANISM_NAMES = MECHANISMS.available()


def make_mechanism(name: str, **kwargs) -> IncentiveMechanism:
    """Deprecated alias for ``MECHANISMS.create(name, **kwargs)``.

    Kept for one release so existing call sites keep working; new code
    should use :data:`MECHANISMS` (or ``repro.api.create_mechanism``).

    Raises:
        ValueError: for an unknown name (message lists the valid ones).
    """
    warnings.warn(
        "make_mechanism() is deprecated; use MECHANISMS.create(name, ...) "
        "from repro.core.mechanisms.factory (or repro.api.create_mechanism)",
        DeprecationWarning,
        stacklevel=2,
    )
    return MECHANISMS.create(name, **kwargs)
