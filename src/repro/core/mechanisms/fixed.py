"""The fixed incentive baseline.

From Section VI: "the fixed incentive mechanism randomly generates a
demand level for each task as presented in Table III and uses the
corresponding reward for each task.  The reward of each task would not
change in latter rounds."
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.levels import DemandLevels
from repro.core.rewards import RewardSchedule
from repro.core.mechanisms.base import IncentiveMechanism, RoundView
from repro.world.generator import World


class FixedMechanism(IncentiveMechanism):
    """One random demand level per task, frozen for the whole simulation.

    Uses the same Eq. 7/9 reward schedule as the on-demand mechanism so
    the two are budget-comparable; only the *level assignment* differs
    (random and frozen instead of demand-driven and per-round).
    """

    name = "fixed"

    def __init__(
        self,
        budget: float = 1000.0,
        step: float = 0.5,
        levels: Optional[DemandLevels] = None,
        schedule: Optional[RewardSchedule] = None,
    ):
        self.budget = budget
        self.step = step
        self.levels = levels if levels is not None else DemandLevels(5)
        self.schedule: Optional[RewardSchedule] = schedule
        self._prices: Dict[int, float] = {}

    def initialize(self, world: World, rng: np.random.Generator) -> None:
        if self.schedule is None:
            self.schedule = RewardSchedule.from_budget(
                budget=self.budget,
                total_required_measurements=world.total_required_measurements,
                step=self.step,
                levels=self.levels,
            )
        drawn_levels = rng.integers(1, self.levels.count + 1, size=len(world.tasks))
        self._prices = {
            task.task_id: self.schedule.reward_for_level(int(level))
            for task, level in zip(world.tasks, drawn_levels)
        }

    def rewards(self, view: RoundView) -> Dict[int, float]:
        if not self._prices and view.active_tasks:
            raise RuntimeError("initialize() must be called before rewards()")
        prices = {t.task_id: self._prices[t.task_id] for t in view.active_tasks}
        return self._require_all_tasks(prices, view.active_tasks)
