"""The paper's contribution: the demand-based dynamic incentive mechanism.

Per round (Section IV):

1. compute each active task's three factor demands (Eq. 3–5) from its
   deadline, progress, and neighbouring-user count,
2. combine them with AHP weights and normalise to [0, 1] (Eq. 2 + IV-C),
3. bucket into demand levels (Table III),
4. price via :math:`r = r_0 + \\lambda(DL - 1)` (Eq. 7) with the
   budget-derived :math:`r_0` (Eq. 9).

Neighbour counts use the :class:`~repro.geometry.grid_index.GridIndex`
over the users' *current* positions, rebuilt each round — the demands are
"real-time" in the paper's sense.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.ahp import PairwiseComparisonMatrix
from repro.core.demand import DemandCalculator, DemandWeights, TaskDemandInputs
from repro.core.levels import DemandLevels
from repro.core.rewards import RewardSchedule
from repro.core.mechanisms.base import IncentiveMechanism, RoundView
from repro.geometry.grid_index import GridIndex
from repro.world.generator import World


class OnDemandMechanism(IncentiveMechanism):
    """Demand-based dynamic pricing (the paper's Section IV mechanism).

    Args:
        budget: platform reward budget B (used to derive :math:`r_0`
            from the world's total required measurements at
            :meth:`initialize`, Eq. 9).  Ignored if ``schedule`` is given.
        step: per-level reward increment :math:`\\lambda` (Eq. 7).
        levels: demand-level partition (default: the paper's N = 5).
        neighbour_radius: the R of "users within R meters are neighbours"
            (Eq. 5 context); the paper leaves the value open, we default
            to 500 m (see DESIGN.md §3).
        comparison_matrix: AHP matrix over (deadline, progress,
            neighbours); default is the paper's Table I example.
        weight_method: AHP weight extraction method (see
            :meth:`PairwiseComparisonMatrix.weights`).
        schedule: explicit reward schedule, bypassing the Eq. 9
            derivation (used by tests and ablations).
        weights: explicit criteria weights, bypassing the AHP derivation
            (used by the factor-ablation experiments).
        deadline_scale / progress_scale / scarcity_scale: the factor
            coefficients :math:`\\lambda_{1..3}`.
    """

    name = "on-demand"

    def __init__(
        self,
        budget: float = 1000.0,
        step: float = 0.5,
        levels: Optional[DemandLevels] = None,
        neighbour_radius: float = 500.0,
        comparison_matrix: Optional[PairwiseComparisonMatrix] = None,
        weight_method: str = "column-normalization",
        schedule: Optional[RewardSchedule] = None,
        weights: Optional[DemandWeights] = None,
        deadline_scale: float = 1.0,
        progress_scale: float = 1.0,
        scarcity_scale: float = 1.0,
    ):
        if neighbour_radius <= 0:
            raise ValueError(
                f"neighbour_radius must be positive, got {neighbour_radius}"
            )
        self.budget = budget
        self.step = step
        self.levels = levels if levels is not None else DemandLevels(5)
        self.neighbour_radius = neighbour_radius
        if weights is not None and comparison_matrix is not None:
            raise ValueError("pass either weights or comparison_matrix, not both")
        self.weights = (
            weights
            if weights is not None
            else DemandWeights.from_ahp(comparison_matrix, weight_method)
        )
        self.calculator = DemandCalculator(
            weights=self.weights,
            deadline_scale=deadline_scale,
            progress_scale=progress_scale,
            scarcity_scale=scarcity_scale,
        )
        self.schedule: Optional[RewardSchedule] = schedule
        #: normalised demands of the last priced round, keyed by task id —
        #: exposed for observability (experiments and tests read it).
        self.last_demands: Dict[int, float] = {}
        #: when True, :meth:`rewards` runs the vectorised Eq. 2–7 path
        #: (bit-identical prices; set by the batched engine).
        self.batched = False
        #: optional :class:`~repro.geometry.grid_index.
        #: IncrementalNeighbourCounter` answering Eq. 5 queries without a
        #: per-round grid rebuild (injected by the batched engine, which
        #: keeps it current from its own move loop; exact counts).
        self.neighbour_counter = None

    def initialize(self, world: World, rng: np.random.Generator) -> None:
        if self.schedule is None:
            self.schedule = RewardSchedule.from_budget(
                budget=self.budget,
                total_required_measurements=world.total_required_measurements,
                step=self.step,
                levels=self.levels,
            )

    def rewards(self, view: RoundView) -> Dict[int, float]:
        if self.schedule is None:
            raise RuntimeError("initialize() must be called before rewards()")
        tasks = list(view.active_tasks)
        if not tasks:
            self.last_demands = {}
            return {}
        if self.batched:
            return self._rewards_batched(view, tasks)
        neighbours = self._neighbour_counts(view)
        inputs: List[TaskDemandInputs] = [
            TaskDemandInputs(
                round_no=view.round_no,
                deadline=task.deadline,
                received=task.received,
                required=task.required_measurements,
                neighbours=neighbours[i],
            )
            for i, task in enumerate(tasks)
        ]
        demands = self.calculator.demands(inputs)
        self.last_demands = {t.task_id: d for t, d in zip(tasks, demands)}
        prices = {
            task.task_id: self.schedule.reward_for_demand(demand)
            for task, demand in zip(tasks, demands)
        }
        return self._require_all_tasks(prices, tasks)

    def _rewards_batched(self, view: RoundView, tasks: List) -> Dict[int, float]:
        """Vectorised Eq. 2–7: same prices, numpy arithmetic.

        Neighbour counts come from :meth:`GridIndex.counts_array` (exact
        counts, boundary-rechecked), demands from
        :meth:`DemandCalculator.demands_array` (distinct-value scalar
        logs), prices from :meth:`RewardSchedule.rewards_array` — each
        pinned bit-identical to its scalar counterpart by tests.
        """
        if self.neighbour_counter is not None:
            neighbours = self.neighbour_counter.counts_array(
                [t.location for t in tasks]
            )
        elif view.user_locations:
            index = GridIndex(view.user_locations, cell_size=self.neighbour_radius)
            neighbours = index.counts_array(
                [t.location for t in tasks], self.neighbour_radius
            )
        else:
            neighbours = np.zeros(len(tasks), dtype=int)
        demands = self.calculator.demands_array(
            round_no=view.round_no,
            deadlines=np.asarray([t.deadline for t in tasks]),
            received=np.asarray([t.received for t in tasks]),
            required=np.asarray([t.required_measurements for t in tasks]),
            neighbours=neighbours,
        )
        self.last_demands = {
            t.task_id: float(d) for t, d in zip(tasks, demands)
        }
        rewards = self.schedule.rewards_array(demands)
        prices = {
            task.task_id: float(reward) for task, reward in zip(tasks, rewards)
        }
        return self._require_all_tasks(prices, tasks)

    def _neighbour_counts(self, view: RoundView) -> List[int]:
        """Per-task neighbouring-user counts from a per-round grid index."""
        if not view.user_locations:
            return [0] * len(view.active_tasks)
        index = GridIndex(view.user_locations, cell_size=self.neighbour_radius)
        return index.counts_for(
            [t.location for t in view.active_tasks], self.neighbour_radius
        )
