"""The demand indicator: Eq. 2–5 of the paper.

The demand :math:`d^k_i` of task :math:`t_i` at round k is a weighted sum
of three factor demands:

- :func:`deadline_factor` — Eq. 3: grows as round k approaches the
  deadline :math:`\\tau_i`, bounded by :math:`\\lambda_1 \\ln 2`.
- :func:`progress_factor` — Eq. 4: shrinks as the completing progress
  :math:`\\pi_i / \\varphi_i` grows, bounded by :math:`\\lambda_2 \\ln 2`.
- :func:`scarcity_factor` — Eq. 5: grows as the task has fewer
  neighbouring users relative to the best-served task, bounded by
  :math:`\\lambda_3 \\ln 2`.

:class:`DemandCalculator` combines them with AHP weights (Eq. 2) and
normalises by :math:`\\lambda_{max} \\ln 2` so the result lies in [0, 1]
(Section IV-C), ready for the level bucketing of Table III.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.ahp import PairwiseComparisonMatrix, example_comparison_matrix


@dataclass(frozen=True)
class DemandWeights:
    """The AHP weight vector :math:`W = (w_1, w_2, w_3)^T` of Eq. 2.

    Weights must be non-negative and sum to 1 (the paper's constraint
    :math:`w_1 + w_2 + w_3 = 1`).
    """

    deadline: float
    progress: float
    scarcity: float

    def __post_init__(self) -> None:
        weights = (self.deadline, self.progress, self.scarcity)
        if any(w < 0 for w in weights):
            raise ValueError(f"weights must be non-negative, got {weights}")
        if not math.isclose(sum(weights), 1.0, abs_tol=1e-9):
            raise ValueError(f"weights must sum to 1, got {sum(weights)}")

    @classmethod
    def from_ahp(
        cls,
        matrix: PairwiseComparisonMatrix = None,
        method: str = "column-normalization",
    ) -> "DemandWeights":
        """Derive weights from an AHP comparison matrix (Table I by default).

        Raises:
            ValueError: if the matrix order is not 3 — the demand model
                has exactly three criteria.
        """
        if matrix is None:
            matrix = example_comparison_matrix()
        if matrix.order != 3:
            raise ValueError(
                f"the demand model has 3 criteria, got a matrix of order {matrix.order}"
            )
        w = matrix.weights(method)
        return cls(deadline=float(w[0]), progress=float(w[1]), scarcity=float(w[2]))

    def as_array(self) -> np.ndarray:
        return np.asarray([self.deadline, self.progress, self.scarcity], dtype=float)


def deadline_factor(round_no: int, deadline: int, scale: float = 1.0) -> float:
    """Demand affected by the deadline (Eq. 3).

    :math:`X^k_{i1} = \\lambda_1 \\ln(1 + 1 / (\\tau_i - (k - 1)))`.

    The factor increases — with increasing growth rate — as round k
    approaches the deadline, reaching :math:`\\lambda_1 \\ln 2` at
    :math:`k = \\tau_i`.

    Args:
        round_no: current round k (1-based).
        deadline: the task deadline :math:`\\tau_i` in rounds.
        scale: the coefficient :math:`\\lambda_1`.

    Raises:
        ValueError: if the task's deadline already passed (the engine
            never asks for the demand of an expired task).
    """
    if round_no < 1:
        raise ValueError(f"round_no must be >= 1, got {round_no}")
    remaining = deadline - (round_no - 1)
    if remaining < 1:
        raise ValueError(
            f"round {round_no} is past deadline {deadline}; expired tasks have no demand"
        )
    return scale * math.log(1.0 + 1.0 / remaining)


def progress_factor(received: int, required: int, scale: float = 1.0) -> float:
    """Demand affected by the completing progress (Eq. 4).

    :math:`X^k_{i2} = \\lambda_2 \\ln(1 + (1 - \\pi_i / \\varphi_i))`.

    Maximal (:math:`\\lambda_2 \\ln 2`) for an untouched task, zero for a
    complete one, with the *reduction* rate growing as progress nears 1.
    """
    if required < 1:
        raise ValueError(f"required must be >= 1, got {required}")
    if received < 0:
        raise ValueError(f"received must be non-negative, got {received}")
    progress = min(1.0, received / required)
    return scale * math.log(2.0 - progress)


def scarcity_factor(neighbours: int, max_neighbours: int, scale: float = 1.0) -> float:
    """Demand affected by the number of neighbouring users (Eq. 5).

    :math:`X^k_{i3} = \\lambda_3 \\ln(1 + (1 - N_i / N_{max}))` where
    :math:`N_{max}` is the largest neighbour count over all tasks this
    round.  A task with no users nearby gets the full
    :math:`\\lambda_3 \\ln 2`; the best-served task gets 0.

    If *no* task has any neighbour (:math:`N_{max} = 0`), all tasks are
    equally starved and the factor is maximal for every task.
    """
    if neighbours < 0:
        raise ValueError(f"neighbours must be non-negative, got {neighbours}")
    if max_neighbours < neighbours:
        raise ValueError(
            f"max_neighbours ({max_neighbours}) < neighbours ({neighbours})"
        )
    if max_neighbours == 0:
        return scale * math.log(2.0)
    return scale * math.log(2.0 - neighbours / max_neighbours)


def scarcity_factors(
    neighbours: Sequence[int],
    max_neighbours: int,
    scale: float = 1.0,
) -> np.ndarray:
    """Array-native :func:`scarcity_factor`: one Eq. 5 factor per task.

    Validation runs once over the whole vector instead of once per task,
    and the logs go through :func:`_log_unique` — neighbour ratios take
    few distinct values per round, so the result is bit-identical to the
    scalar factor per element (same IEEE divisions, same ``math.log``).
    """
    counts = np.asarray(neighbours)
    if counts.size == 0:
        return np.zeros(0)
    if np.any(counts < 0):
        bad = int(counts[counts < 0][0])
        raise ValueError(f"neighbours must be non-negative, got {bad}")
    if max_neighbours < int(counts.max()):
        raise ValueError(
            f"max_neighbours ({max_neighbours}) < neighbours "
            f"({int(counts.max())})"
        )
    if max_neighbours == 0:
        return np.full(counts.shape, scale * math.log(2.0))
    return scale * _log_unique(2.0 - counts / max_neighbours)


@dataclass(frozen=True)
class TaskDemandInputs:
    """Everything the demand indicator needs to know about one task at round k."""

    round_no: int
    deadline: int
    received: int
    required: int
    neighbours: int


@dataclass(frozen=True)
class DemandCalculator:
    """Computes weighted, normalised task demands (Eq. 2 + Section IV-C).

    Args:
        weights: the AHP criteria weights.
        deadline_scale / progress_scale / scarcity_scale: the coefficients
            :math:`\\lambda_1, \\lambda_2, \\lambda_3` of Eq. 3–5.
    """

    weights: DemandWeights
    deadline_scale: float = 1.0
    progress_scale: float = 1.0
    scarcity_scale: float = 1.0

    def __post_init__(self) -> None:
        scales = (self.deadline_scale, self.progress_scale, self.scarcity_scale)
        if any(s <= 0 for s in scales):
            raise ValueError(f"factor scales must be positive, got {scales}")

    @property
    def max_demand(self) -> float:
        """The bound :math:`\\lambda_{max} \\ln 2` on any raw demand.

        From Section IV-B: each factor is bounded by its
        :math:`\\lambda \\ln 2` and the weights sum to 1.
        """
        return max(
            self.deadline_scale, self.progress_scale, self.scarcity_scale
        ) * math.log(2.0)

    def raw_demand(self, inputs: TaskDemandInputs, max_neighbours: int) -> float:
        """The un-normalised demand :math:`d^k_i` of Eq. 2."""
        x1 = deadline_factor(inputs.round_no, inputs.deadline, self.deadline_scale)
        x2 = progress_factor(inputs.received, inputs.required, self.progress_scale)
        x3 = scarcity_factor(inputs.neighbours, max_neighbours, self.scarcity_scale)
        return (
            self.weights.deadline * x1
            + self.weights.progress * x2
            + self.weights.scarcity * x3
        )

    def normalized_demand(self, inputs: TaskDemandInputs, max_neighbours: int) -> float:
        """The normalised demand :math:`\\bar{d}^k_i = d^k_i / (\\lambda_{max} \\ln 2)` in [0, 1].

        Clamped against float round-off so the [0, 1] contract the level
        bucketing relies on holds exactly.
        """
        value = self.raw_demand(inputs, max_neighbours) / self.max_demand
        return min(1.0, max(0.0, value))

    def demands(self, tasks: Sequence[TaskDemandInputs]) -> List[float]:
        """Normalised demands for a whole round's task population.

        :math:`N_{max}` of Eq. 5 is taken over the given tasks, which is
        exactly the paper's "maximum number of neighbouring mobile users
        among all tasks".  An empty population yields an empty list.
        """
        if not tasks:
            return []
        max_neighbours = max(t.neighbours for t in tasks)
        # Eq. 5 is the only factor coupling tasks (through N_max), so it
        # is computed for the whole population at once via the
        # array-native variant; the per-task factors stay scalar.  Each
        # x3 element is bitwise the scalar factor, and the weighted sum
        # below evaluates in raw_demand's exact order, so this routing
        # is invisible in the produced demands.
        x3 = scarcity_factors(
            [t.neighbours for t in tasks], max_neighbours, self.scarcity_scale
        )
        bound = self.max_demand
        demands: List[float] = []
        for inputs, x3_i in zip(tasks, x3):
            x1 = deadline_factor(
                inputs.round_no, inputs.deadline, self.deadline_scale
            )
            x2 = progress_factor(
                inputs.received, inputs.required, self.progress_scale
            )
            raw = (
                self.weights.deadline * x1
                + self.weights.progress * x2
                + self.weights.scarcity * float(x3_i)
            )
            demands.append(min(1.0, max(0.0, raw / bound)))
        return demands

    def demands_array(
        self,
        round_no: int,
        deadlines: np.ndarray,
        received: np.ndarray,
        required: np.ndarray,
        neighbours: np.ndarray,
    ) -> np.ndarray:
        """Vectorised :meth:`demands`, bit-identical per element.

        The log arguments are built with elementwise IEEE arithmetic
        (identical to the scalar path) and the logs themselves are taken
        with :func:`math.log` on the *distinct* argument values only —
        remaining deadlines, progress fractions, and neighbour ratios
        take few distinct values per round — then broadcast back.  That
        sidesteps the last-ulp differences between ``np.log`` and libm's
        ``log`` that would otherwise let the two engine paths drift.

        Raises:
            ValueError: if any task is already expired (same contract as
                :func:`deadline_factor`).
        """
        n = len(deadlines)
        if n == 0:
            return np.zeros(0)
        remaining = np.asarray(deadlines, dtype=float) - (round_no - 1)
        if round_no < 1:
            raise ValueError(f"round_no must be >= 1, got {round_no}")
        if np.any(remaining < 1):
            raise ValueError(
                f"round {round_no} is past a task deadline; "
                f"expired tasks have no demand"
            )
        x1 = self.deadline_scale * _log_unique(1.0 + 1.0 / remaining)
        progress = np.minimum(1.0, np.asarray(received) / np.asarray(required))
        x2 = self.progress_scale * _log_unique(2.0 - progress)
        max_neighbours = int(np.max(neighbours)) if n else 0
        x3 = scarcity_factors(neighbours, max_neighbours, self.scarcity_scale)
        raw = (
            self.weights.deadline * x1
            + self.weights.progress * x2
            + self.weights.scarcity * x3
        )
        return np.minimum(1.0, np.maximum(0.0, raw / self.max_demand))


def _log_unique(values: np.ndarray) -> np.ndarray:
    """Elementwise ``math.log``, evaluated once per distinct value.

    ``np.log`` is not guaranteed to round identically to ``math.log``;
    the demand factors feed from small discrete input sets, so paying
    one scalar log per distinct value keeps the vectorised demand path
    bit-identical to the scalar one at negligible cost.
    """
    uniq, inverse = np.unique(values, return_inverse=True)
    logs = np.asarray([math.log(v) for v in uniq])
    return logs[inverse]
