"""The reward schedule: Eq. 7–9 of the paper.

Rewards are linear in the demand level:

.. math::  r^k_{t_i} = r_0 + \\lambda (DL^k_{t_i} - 1)        \\qquad (Eq. 7)

and the base reward :math:`r_0` is derived from the platform budget B so
that even if *every* measurement of *every* task were paid at the top
level, the payout stays within budget:

.. math::  \\sum_i \\varphi_i (r_0 + \\lambda (N - 1)) \\le B  \\qquad (Eq. 8)
.. math::  r_0 = B / \\sum_i \\varphi_i - \\lambda (N - 1)     \\qquad (Eq. 9)

With the paper's constants (B = 1000, 20 tasks x 20 measurements,
lambda = 0.5, N = 5) this gives r0 = 0.5 and rewards in {0.5, ..., 2.5}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.levels import DemandLevels


@dataclass(frozen=True)
class RewardSchedule:
    """Maps demand levels to per-measurement rewards (Eq. 7).

    Args:
        base_reward: :math:`r_0`, the reward at demand level 1.
        step: :math:`\\lambda`, the per-level reward increment.
        levels: the demand-level partition (Table III).
    """

    base_reward: float
    step: float
    levels: DemandLevels

    def __post_init__(self) -> None:
        if self.base_reward <= 0:
            raise ValueError(
                f"base reward r0 must be positive, got {self.base_reward}; "
                "with Eq. 9 this means the budget is too small for the "
                "chosen step and level count"
            )
        if self.step < 0:
            raise ValueError(f"step lambda must be non-negative, got {self.step}")

    @classmethod
    def from_budget(
        cls,
        budget: float,
        total_required_measurements: int,
        step: float = 0.5,
        levels: DemandLevels = None,
    ) -> "RewardSchedule":
        """Derive :math:`r_0` from the platform budget via Eq. 9.

        Args:
            budget: the platform's total reward budget B.
            total_required_measurements: :math:`\\sum_i \\varphi_i`.
            step: :math:`\\lambda`.
            levels: demand levels (default: the paper's N = 5).

        Raises:
            ValueError: if the implied :math:`r_0` is non-positive, i.e.
                the budget cannot cover worst-case top-level payouts.
        """
        if levels is None:
            levels = DemandLevels(5)
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        if total_required_measurements < 1:
            raise ValueError(
                "total_required_measurements must be >= 1, "
                f"got {total_required_measurements}"
            )
        base = budget / total_required_measurements - step * (levels.count - 1)
        return cls(base_reward=base, step=step, levels=levels)

    # -- Eq. 7 ------------------------------------------------------------

    def reward_for_level(self, level: int) -> float:
        """:math:`r_0 + \\lambda (DL - 1)` for a 1-based demand level.

        Raises:
            ValueError: for a level outside the partition.
        """
        if not 1 <= level <= self.levels.count:
            raise ValueError(
                f"level must be in 1..{self.levels.count}, got {level}"
            )
        return self.base_reward + self.step * (level - 1)

    def reward_for_demand(self, normalized_demand: float) -> float:
        """Level-bucket a normalised demand and apply Eq. 7."""
        return self.reward_for_level(self.levels.level_of(normalized_demand))

    def rewards_for_demands(self, demands: Sequence[float]) -> List[float]:
        """Vector form of :meth:`reward_for_demand`."""
        return [self.reward_for_demand(d) for d in demands]

    def rewards_array(self, demands: "np.ndarray") -> "np.ndarray":
        """Vectorised :meth:`reward_for_demand`, bit-identical per element.

        Levels come from :meth:`DemandLevels.levels_array` and Eq. 7 is
        the same ``r0 + step * (level - 1)`` IEEE arithmetic elementwise.
        """
        import numpy as np

        levels = self.levels.levels_array(demands)
        return self.base_reward + self.step * (levels - 1).astype(float)

    # -- budget accounting ----------------------------------------------------

    @property
    def max_reward(self) -> float:
        """The top-level reward :math:`r_0 + \\lambda (N - 1)`."""
        return self.reward_for_level(self.levels.count)

    def worst_case_payout(self, total_required_measurements: int) -> float:
        """LHS of Eq. 8: every measurement paid at the maximum reward."""
        if total_required_measurements < 0:
            raise ValueError(
                "total_required_measurements must be non-negative, "
                f"got {total_required_measurements}"
            )
        return total_required_measurements * self.max_reward

    def respects_budget(self, budget: float, total_required_measurements: int) -> bool:
        """Whether Eq. 8 holds for the given budget (with float slack)."""
        return self.worst_case_payout(total_required_measurements) <= budget + 1e-9
