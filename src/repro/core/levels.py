"""Demand levels: the Table III bucketing of normalised demand.

The paper maps normalised demand in [0, 1] into N uniform levels; with
N = 5 the buckets are [0, 0.2], (0.2, 0.4], (0.4, 0.6], (0.6, 0.8],
(0.8, 1.0] and a demand of e.g. 0.3 falls in level 2.  Levels are
half-open on the left except the first, exactly as the table is written.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class DemandLevels:
    """A uniform partition of [0, 1] into ``count`` demand levels.

    >>> DemandLevels(5).level_of(0.3)
    2
    >>> DemandLevels(5).level_of(0.2)
    1
    """

    count: int = 5

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"level count must be >= 1, got {self.count}")

    @property
    def width(self) -> float:
        """Width of each bucket: 1 / count."""
        return 1.0 / self.count

    def level_of(self, normalized_demand: float) -> int:
        """The 1-based demand level of a normalised demand in [0, 1].

        The first bucket is closed ([0, width]); every later bucket is
        half-open ((low, high]), matching Table III.

        Raises:
            ValueError: for demand outside [0, 1] (beyond float slack).
        """
        d = normalized_demand
        if d < -1e-12 or d > 1.0 + 1e-12:
            raise ValueError(f"normalised demand must lie in [0, 1], got {d}")
        d = min(max(d, 0.0), 1.0)
        if d <= self.width:
            return 1
        # ceil(d / width) lands (low, high] in the right bucket; guard the
        # exact boundary against float noise by nudging down first.
        level = int(math.ceil(d / self.width - 1e-12))
        return min(level, self.count)

    def levels_of(self, demands: Sequence[float]) -> List[int]:
        """Vector form of :meth:`level_of`."""
        return [self.level_of(d) for d in demands]

    def levels_array(self, demands: "np.ndarray") -> "np.ndarray":
        """Vectorised :meth:`level_of`, bit-identical per element.

        Replicates the scalar arithmetic exactly (same clamp, same
        boundary nudge), so the batched pricing path buckets every
        demand into the same level as the scalar path.

        Raises:
            ValueError: if any demand lies outside [0, 1] beyond slack.
        """
        import numpy as np

        d = np.asarray(demands, dtype=float)
        if d.size and (np.any(d < -1e-12) or np.any(d > 1.0 + 1e-12)):
            raise ValueError("normalised demands must lie in [0, 1]")
        d = np.minimum(np.maximum(d, 0.0), 1.0)
        levels = np.minimum(
            np.ceil(d / self.width - 1e-12).astype(int), self.count
        )
        return np.where(d <= self.width, 1, levels)

    def bounds(self, level: int) -> Tuple[float, float]:
        """The (low, high] bounds of a 1-based level (level 1 is [0, high]).

        Raises:
            ValueError: for a level outside 1..count.
        """
        if not 1 <= level <= self.count:
            raise ValueError(f"level must be in 1..{self.count}, got {level}")
        return ((level - 1) * self.width, level * self.width)

    def table(self) -> List[Tuple[Tuple[float, float], int]]:
        """The full bucket table, Table III style: [((low, high), level), ...]."""
        return [(self.bounds(level), level) for level in range(1, self.count + 1)]
