"""The Analytic Hierarchy Process (AHP) for criteria weighting.

Section IV-B of the paper uses Saaty's AHP to turn a pairwise-comparison
matrix over the three demand criteria (deadline, completing progress,
number of neighbouring users) into a weight vector
:math:`W = (w_1, w_2, w_3)^T` with :math:`\\sum w_i = 1`.

This module implements the general n-criteria machinery:

- reciprocal-matrix validation against Saaty's 1–9 scale,
- the paper's weight rule: column-normalise, then average each row
  (Eq. 6; Tables I → II → W = (0.648, 0.230, 0.122)),
- the classical principal-eigenvector weights as an alternative,
- Saaty's consistency index / consistency ratio, so callers can reject
  incoherent expert matrices (CR > 0.1 is the standard threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: Saaty's random consistency index, indexed by matrix order n (0- and
#: 1-element matrices are trivially consistent).  Values from Saaty (1980).
RANDOM_CONSISTENCY_INDEX = {
    1: 0.0,
    2: 0.0,
    3: 0.58,
    4: 0.90,
    5: 1.12,
    6: 1.24,
    7: 1.32,
    8: 1.41,
    9: 1.45,
    10: 1.49,
}

#: Bounds of Saaty's fundamental comparison scale.  Entries of a pairwise
#: comparison matrix must lie in [1/9, 9].
SAATY_SCALE_MIN = 1.0 / 9.0
SAATY_SCALE_MAX = 9.0

#: Default tolerance for the reciprocity check a_ij * a_ji == 1.
RECIPROCITY_TOL = 1e-9


@dataclass(frozen=True)
class PairwiseComparisonMatrix:
    """A validated AHP pairwise-comparison matrix :math:`A = (a_{ij})`.

    Entry :math:`a_{ij}` expresses how much more important criterion i is
    than criterion j on Saaty's 1–9 scale; :math:`a_{ij} a_{ji} = 1` and
    the diagonal is 1.

    Construct via :meth:`from_rows` (validating) or
    :meth:`from_upper_triangle` (builds the reciprocal lower half).
    """

    values: np.ndarray

    def __post_init__(self) -> None:
        a = np.asarray(self.values, dtype=float)
        object.__setattr__(self, "values", a)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"comparison matrix must be square, got shape {a.shape}")
        n = a.shape[0]
        if n < 1:
            raise ValueError("comparison matrix must have at least one criterion")
        if np.any(a <= 0):
            raise ValueError("comparison matrix entries must be positive")
        if not np.allclose(np.diag(a), 1.0, atol=RECIPROCITY_TOL):
            raise ValueError("comparison matrix diagonal must be all ones")
        if not np.allclose(a * a.T, 1.0, atol=1e-6):
            raise ValueError(
                "comparison matrix must be reciprocal: a_ij * a_ji == 1"
            )
        if np.any(a < SAATY_SCALE_MIN - 1e-12) or np.any(a > SAATY_SCALE_MAX + 1e-12):
            raise ValueError(
                "comparison matrix entries must lie on Saaty's scale [1/9, 9]"
            )

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[float]]) -> "PairwiseComparisonMatrix":
        """Build from explicit rows (validated)."""
        return cls(np.asarray(rows, dtype=float))

    @classmethod
    def from_upper_triangle(cls, upper: Sequence[float]) -> "PairwiseComparisonMatrix":
        """Build an n x n matrix from its strict upper triangle, row-major.

        For n criteria, ``upper`` must have n(n-1)/2 entries; the diagonal
        is set to 1 and the lower triangle to the reciprocals.

        >>> PairwiseComparisonMatrix.from_upper_triangle([3, 5, 2]).values.shape
        (3, 3)
        """
        count = len(upper)
        # Solve n(n-1)/2 == count for integer n.
        n = int((1 + np.sqrt(1 + 8 * count)) / 2)
        if n * (n - 1) // 2 != count:
            raise ValueError(
                f"{count} entries do not form a strict upper triangle of any square matrix"
            )
        a = np.eye(n)
        k = 0
        for i in range(n):
            for j in range(i + 1, n):
                a[i, j] = float(upper[k])
                a[j, i] = 1.0 / float(upper[k])
                k += 1
        return cls(a)

    # -- basic properties -------------------------------------------------

    @property
    def order(self) -> int:
        """Number of criteria n."""
        return int(self.values.shape[0])

    def normalized(self) -> np.ndarray:
        """The column-normalised matrix :math:`\\bar{A}` (Table II).

        Each entry is :math:`\\bar{a}_{ij} = a_{ij} / \\sum_k a_{kj}`, so
        every column sums to 1.
        """
        return self.values / self.values.sum(axis=0, keepdims=True)

    # -- weight extraction --------------------------------------------------

    def weights(self, method: str = "column-normalization") -> np.ndarray:
        """The criteria weight vector W, non-negative and summing to 1.

        Args:
            method: ``"column-normalization"`` (the paper's Eq. 6: average
                the rows of the normalised matrix) or ``"eigenvector"``
                (Saaty's principal right eigenvector, the classical AHP
                prescription).  For a perfectly consistent matrix the two
                coincide.

        Raises:
            ValueError: for an unknown method name.
        """
        if method == "column-normalization":
            return self.normalized().mean(axis=1)
        if method == "eigenvector":
            return self._eigenvector_weights()
        raise ValueError(
            f"unknown weight method {method!r}; "
            "valid: 'column-normalization', 'eigenvector'"
        )

    def _eigenvector_weights(self) -> np.ndarray:
        eigenvalues, eigenvectors = np.linalg.eig(self.values)
        principal = int(np.argmax(eigenvalues.real))
        vector = np.abs(eigenvectors[:, principal].real)
        return vector / vector.sum()

    # -- consistency ---------------------------------------------------------

    def principal_eigenvalue(self) -> float:
        """The largest eigenvalue :math:`\\lambda_{max}` (>= n always)."""
        eigenvalues = np.linalg.eigvals(self.values)
        return float(np.max(eigenvalues.real))

    def consistency_index(self) -> float:
        """Saaty's CI = (lambda_max - n) / (n - 1); 0 for perfectly consistent."""
        n = self.order
        if n <= 2:
            return 0.0
        return (self.principal_eigenvalue() - n) / (n - 1)

    def consistency_ratio(self) -> float:
        """Saaty's CR = CI / RI.

        A matrix with CR <= 0.1 is conventionally acceptable.  For orders
        1 and 2 (always consistent) the ratio is defined as 0.

        Raises:
            ValueError: for orders beyond the tabulated random index.
        """
        n = self.order
        if n <= 2:
            return 0.0
        try:
            random_index = RANDOM_CONSISTENCY_INDEX[n]
        except KeyError:
            raise ValueError(
                f"no random consistency index tabulated for order {n}"
            ) from None
        return self.consistency_index() / random_index

    def is_acceptably_consistent(self, threshold: float = 0.1) -> bool:
        """Whether CR <= threshold (Saaty's standard 0.1 cut-off)."""
        return self.consistency_ratio() <= threshold


def example_comparison_matrix() -> PairwiseComparisonMatrix:
    """The paper's Table I example matrix over (deadline, progress, neighbours).

    Deadline is slightly more important than progress (3) and strongly
    more important than neighbour count (5); progress is twice as
    important as neighbour count.  Its Eq.-6 weights are
    (0.648, 0.230, 0.122) as derived in Table II.
    """
    return PairwiseComparisonMatrix.from_rows(
        [
            [1.0, 3.0, 5.0],
            [1.0 / 3.0, 1.0, 2.0],
            [1.0 / 5.0, 1.0 / 2.0, 1.0],
        ]
    )
