"""Command-line interface: regenerate any paper panel from a terminal.

Usage::

    repro list                       # show every experiment id
    repro run fig6a --reps 20        # regenerate one panel, print the rows
    repro run fig6a --json out.json  # ... and persist it
    repro run fig6a --resume ckpt/   # checkpoint + resume an interrupted run
    repro run fig6a --workers 4      # parallel repetitions, identical output
    repro tables                     # print Tables I-III
    repro simulate --users 100       # one run, full metrics summary
    repro simulate --selector-timeout 0.5   # ... with the DP watchdog armed
    repro simulate --trace out.json  # ... tracing phases (open in Perfetto)
    repro trace summarize out.json   # per-phase timings from a trace file
    repro simulate --profile         # ... sampling RSS/CPU/GC while it runs
    repro simulate --obs-store .repro-obs   # ... and record it in the store
    repro obs ingest BENCH_selectors.json   # fold a bench trajectory in
    repro obs regress                # gate the latest runs on their history
    repro obs dashboard --html obs.html     # sparklines + one-file HTML
    repro serve --root .repro-server        # the always-on job service
    repro jobs submit --scenario city-2k    # submit a job to it
    repro jobs tail job-000001       # stream its rounds as NDJSON

Every subcommand shares the logging flags ``-v/--verbose`` (repeatable),
``--quiet``, and ``--log-json``; the default is warnings-only to stderr,
so stdout output is unchanged.  ``python -m repro.cli`` works
identically when the console script is not on PATH.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.registry import experiment_ids, run_experiment
from repro.experiments.tables import all_tables
from repro.io.csvio import write_series_csv
from repro.io.results import save_result
from repro.io.tables import render_experiment, render_table
from repro.metrics import MetricsSummary
from repro.obs.log import configure_logging
from repro.simulation import SimulationConfig, simulate


def _logging_flags() -> argparse.ArgumentParser:
    """The shared logging flags, as a parent parser every subcommand uses."""
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("logging")
    group.add_argument("-v", "--verbose", action="count", default=0,
                       help="log INFO (-v) or DEBUG (-vv) to stderr "
                            "(default: warnings only)")
    group.add_argument("--quiet", action="store_true",
                       help="log errors only")
    group.add_argument("--log-json", action="store_true",
                       help="emit log lines as JSON objects (for shippers/jq)")
    return common


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Pay On-demand' (ICDCS 2018) tables and figures.",
    )
    common = _logging_flags()
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", parents=[common],
                   help="list every registered experiment id")

    run = sub.add_parser("run", parents=[common],
                         help="run one experiment and print its rows")
    run.add_argument("experiment", help="experiment id (see 'repro list')")
    run.add_argument("--reps", type=int, default=None,
                     help="repetitions per configuration (default: REPRO_REPS or 20)")
    run.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="also save the result as JSON")
    run.add_argument("--csv", metavar="PATH", default=None,
                     help="also export the series as CSV")
    run.add_argument("--precision", type=int, default=2,
                     help="decimal places in the printed table")
    run.add_argument("--chart", action="store_true",
                     help="also render the series as an ASCII chart")
    run.add_argument("--resume", metavar="DIR", default=None,
                     help="checkpoint repetitions to journals in DIR and "
                          "resume an interrupted run from them (supported "
                          "by journaling experiments, e.g. fig6a, "
                          "sweep-budget)")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="fan repetitions across N simulation processes "
                          "(default: serial); aggregates are bit-identical "
                          "to a serial run and combine with --resume")
    run.add_argument("--obs-store", metavar="DIR", default=None,
                     help="also record the result's series in a run store "
                          "(kind 'experiment:<id>') for trend/regression "
                          "tracking via 'repro obs'")

    sub.add_parser("tables", parents=[common],
                   help="print Tables I-III from the paper")

    report = sub.add_parser(
        "report", parents=[common],
        help="regenerate all paper panels into one markdown report",
    )
    report.add_argument("--reps", type=int, default=None,
                        help="repetitions per configuration")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--out", metavar="PATH", default=None,
                        help="write the report here instead of stdout")

    sim = sub.add_parser("simulate", parents=[common],
                         help="run one simulation, print the metrics")
    sim.add_argument("--scenario", metavar="NAME_OR_PATH", default=None,
                     help="start from a scenario: a preset name (see "
                          "'repro scenarios') or a .toml/.json spec file; "
                          "explicit flags below override the scenario")
    sim.add_argument("--users", type=int, default=None,
                     help="number of users (default 100)")
    sim.add_argument("--tasks", type=int, default=None,
                     help="number of tasks (default 20)")
    sim.add_argument("--rounds", type=int, default=None,
                     help="round horizon (default 15)")
    sim.add_argument("--mechanism", default=None,
                     help="incentive mechanism (default on-demand)")
    sim.add_argument("--selector", default=None,
                     help="task selector (default dp)")
    sim.add_argument("--mobility", default=None,
                     help="mobility policy (default follow-path)")
    sim.add_argument("--layout", default=None, choices=("uniform", "clustered"))
    sim.add_argument("--seed", type=int, default=None, help="seed (default 0)")
    sim.add_argument("--engine", default=None, choices=("scalar", "batched"),
                     help="round-loop implementation; 'batched' vectorises "
                          "problem construction and pricing (bit-identical "
                          "histories, built for 10k+ users)")
    sim.add_argument("--engine-workers", type=int, default=None, metavar="N",
                     help="shard the batched engine's select phase across N "
                          "worker processes over shared memory (requires "
                          "--engine batched; results are bit-identical at "
                          "every worker count)")
    sim.add_argument("--stream", action="store_true",
                     help="aggregate rounds on the fly instead of keeping "
                          "them in memory (bounded-memory large runs; "
                          "pair with --events to retain the full history)")
    sim.add_argument("--events", metavar="PATH", default=None,
                     help="stream every round record to an events JSONL "
                          "as it finishes (works with or without --stream)")
    sim.add_argument("--selector-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock deadline per task-selection call; on "
                          "breach the run degrades to the greedy solver and "
                          "reports the degradation count")
    sim.add_argument("--map", action="store_true",
                     help="render the final world state as an ASCII map")
    sim.add_argument("--trace", metavar="PATH", default=None,
                     help="record run/round/phase spans to PATH as a Chrome "
                          "trace-event file (open at https://ui.perfetto.dev) "
                          "and write a provenance manifest next to it; the "
                          "simulated numbers are bit-identical either way")
    sim.add_argument("--profile", action="store_true",
                     help="sample process RSS/CPU/GC on a background thread "
                          "while the run executes and print the digest; "
                          "simulated numbers are bit-identical either way")
    sim.add_argument("--profile-interval", type=float, default=0.02,
                     metavar="SECONDS",
                     help="seconds between profiler samples (default 0.02)")
    sim.add_argument("--obs-store", metavar="DIR", default=None,
                     help="record metrics (+ manifest, trace summary, and "
                          "profile when enabled) in a run store for "
                          "trend/regression tracking via 'repro obs'")

    scenarios = sub.add_parser(
        "scenarios", parents=[common],
        help="list the built-in scenario presets",
    )
    scenarios.add_argument("--verbose-config", action="store_true",
                           help="also print each preset's full config "
                                "overrides as TOML")

    trace = sub.add_parser("trace", help="inspect trace files written by --trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_sum = trace_sub.add_parser(
        "summarize", parents=[common],
        help="aggregate a trace file into per-phase timings",
    )
    trace_sum.add_argument("path", help="a trace file (Chrome JSON or JSONL)")
    trace_sum.add_argument("--precision", type=int, default=3,
                           help="decimal places in the printed table")
    trace_merge = trace_sub.add_parser(
        "merge", parents=[common],
        help="stitch per-process trace shards into one Chrome trace",
    )
    trace_merge.add_argument(
        "paths", nargs="+",
        help="trace shard files (*.trace.jsonl), or directories to scan "
             "for them — e.g. a job's trace/ directory",
    )
    trace_merge.add_argument(
        "--out", required=True, metavar="FILE",
        help="output Chrome trace JSON (load in Perfetto / chrome://tracing)",
    )

    show = sub.add_parser("show", parents=[common],
                          help="render a saved experiment JSON")
    show.add_argument("path", help="result file written by 'repro run --json'")
    show.add_argument("--chart", action="store_true",
                      help="render as an ASCII chart instead of a table")
    show.add_argument("--precision", type=int, default=2)

    sweep = sub.add_parser(
        "sweep", parents=[common],
        help="sweep any SimulationConfig field against the core metrics",
    )
    sweep.add_argument("field", help="a SimulationConfig field, e.g. n_users")
    sweep.add_argument("values", nargs="+", type=float, help="values to sweep")
    sweep.add_argument("--scenario", metavar="NAME_OR_PATH", default=None,
                       help="sweep on top of a scenario (preset name or "
                            ".toml/.json spec) instead of the defaults")
    sweep.add_argument("--reps", type=int, default=None)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--chart", action="store_true")
    sweep.add_argument("--resume", metavar="DIR", default=None,
                       help="checkpoint repetitions to journals in DIR and "
                            "resume an interrupted sweep from them")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="simulation processes per sweep value "
                            "(default: serial)")

    obs = sub.add_parser(
        "obs",
        help="the run observatory: cross-run store, regression gating, "
             "dashboards",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    store_flag = argparse.ArgumentParser(add_help=False)
    store_flag.add_argument(
        "--store", metavar="DIR",
        default=os.environ.get("REPRO_OBS_STORE", ".repro-obs"),
        help="run store directory (default: $REPRO_OBS_STORE or .repro-obs)",
    )

    obs_ingest = obs_sub.add_parser(
        "ingest", parents=[common, store_flag],
        help="fold bench trajectory files (BENCH_selectors.json) into the store",
    )
    obs_ingest.add_argument("paths", nargs="+",
                            help="bench trajectory JSON files (idempotent: "
                                 "already-ingested entries are skipped)")
    obs_ingest.add_argument("--kind", default="bench",
                            help="run kind to file the entries under "
                                 "(default: bench)")

    obs_list = obs_sub.add_parser(
        "list", parents=[common, store_flag],
        help="list ingested runs",
    )
    obs_list.add_argument("--kind", default=None,
                          help="restrict to one run kind")

    obs_show = obs_sub.add_parser(
        "show", parents=[common, store_flag],
        help="show one run's full record",
    )
    obs_show.add_argument("run_id", help="a run id from 'repro obs list'")

    obs_diff = obs_sub.add_parser(
        "diff", parents=[common, store_flag],
        help="compare two runs value by value",
    )
    obs_diff.add_argument("run_a", help="baseline run id")
    obs_diff.add_argument("run_b", help="candidate run id")

    obs_regress = obs_sub.add_parser(
        "regress", parents=[common, store_flag],
        help="check the latest run of each kind against its baseline window",
    )
    obs_regress.add_argument("--kind", default=None,
                             help="restrict to one run kind")
    obs_regress.add_argument("--window", type=int, default=5,
                             help="baseline window size (default 5)")
    obs_regress.add_argument("--warn-only", action="store_true",
                             help="exit 0 even when metrics regressed "
                                  "(report, don't gate)")
    obs_regress.add_argument("--json", metavar="PATH", default=None,
                             help="also write the full report as JSON")

    obs_dash = obs_sub.add_parser(
        "dashboard", parents=[common, store_flag],
        help="render the store as sparklines (and optionally one-file HTML)",
    )
    obs_dash.add_argument("--window", type=int, default=5,
                          help="regression baseline window (default 5)")
    obs_dash.add_argument("--html", metavar="PATH", default=None,
                          help="also write a self-contained HTML dashboard")

    serve = sub.add_parser(
        "serve", parents=[common],
        help="run the job service: submissions in, supervised "
             "simulations out",
    )
    serve.add_argument(
        "--root", metavar="DIR",
        default=os.environ.get("REPRO_SERVER_ROOT", ".repro-server"),
        help="service state directory (journal, job dirs, obs store; "
             "default: $REPRO_SERVER_ROOT or .repro-server)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default 0 = ephemeral; the chosen "
                            "port lands in <root>/server.json)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="max queued jobs before submissions get 429 "
                            "(default 16)")
    serve.add_argument("--concurrency", type=int, default=2,
                       help="max simultaneously running workers (default 2)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="worker crashes before a job is poisoned "
                            "(default 3)")
    serve.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="default per-job wall-clock budget "
                            "(default: unlimited)")
    serve.add_argument("--memory-limit-mb", type=int, default=None, metavar="MB",
                       help="shed lowest-priority queued jobs when the "
                            "server RSS exceeds this (default: no shedding)")

    env = sub.add_parser(
        "env",
        help="the Gymnasium-style incentive-policy environment",
    )
    env_sub = env.add_subparsers(dest="env_command", required=True)
    env_rollout = env_sub.add_parser(
        "rollout", parents=[common],
        help="roll a policy through IncentiveEnv episodes and print "
             "per-episode returns (the CI env smoke; needs no gymnasium)",
    )
    env_rollout.add_argument("--scenario", metavar="NAME_OR_PATH",
                             default=None,
                             help="scenario preset or spec file "
                                  "(default: the paper config)")
    env_rollout.add_argument("--policy", choices=["none", "random"],
                             default="random",
                             help="'random': uniform samples from the "
                                  "action space; 'none': step with the "
                                  "paper's static knobs (default: random)")
    env_rollout.add_argument("--seeds", type=int, default=3, metavar="N",
                             help="episodes, seeded 0..N-1 (default 3)")
    env_rollout.add_argument("--users", type=int, default=None,
                             help="override n_users")
    env_rollout.add_argument("--tasks", type=int, default=None,
                             help="override n_tasks")
    env_rollout.add_argument("--rounds", type=int, default=None,
                             help="override the round horizon")
    env_rollout.add_argument("--obs", default="demand-levels",
                             help="observation builder name "
                                  "(default: demand-levels)")
    env_rollout.add_argument("--actions", default="incentive",
                             help="action adapter name (default: incentive)")
    env_rollout.add_argument("--reward", default="completeness-delta",
                             help="reward function name "
                                  "(default: completeness-delta)")
    env_rollout.add_argument("--json", action="store_true",
                             help="print one JSON object per episode "
                                  "instead of the table")

    jobs = sub.add_parser(
        "jobs",
        help="talk to a running job service (submit, status, cancel, tail)",
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)
    server_flag = argparse.ArgumentParser(add_help=False)
    server_flag.add_argument(
        "--root", metavar="DIR",
        default=os.environ.get("REPRO_SERVER_ROOT", ".repro-server"),
        help="the service's state directory (its server.json names the "
             "address; default: $REPRO_SERVER_ROOT or .repro-server)",
    )

    jobs_submit = jobs_sub.add_parser(
        "submit", parents=[common, server_flag],
        help="submit a simulation job",
    )
    jobs_submit.add_argument("--scenario", default=None,
                             help="a scenario preset name (see "
                                  "'repro scenarios')")
    jobs_submit.add_argument("--override", action="append", default=[],
                             metavar="FIELD=VALUE",
                             help="SimulationConfig override (repeatable), "
                                  "e.g. --override seed=7")
    jobs_submit.add_argument("--priority", type=int, default=0,
                             help="admission priority: higher runs first, "
                                  "lowest is shed first (default 0)")
    jobs_submit.add_argument("--timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="per-job wall-clock budget")
    jobs_submit.add_argument("--wait", action="store_true",
                             help="block until the job is terminal and exit "
                                  "non-zero unless it is DONE")

    jobs_list = jobs_sub.add_parser(
        "list", parents=[common, server_flag],
        help="list the service's jobs",
    )
    jobs_list.add_argument("--state", default=None,
                           help="restrict to one lifecycle state "
                                "(queued, running, done, failed, cancelled, "
                                "timed_out)")

    jobs_status = jobs_sub.add_parser(
        "status", parents=[common, server_flag],
        help="show one job's full status document",
    )
    jobs_status.add_argument("job_id", help="a job id from 'repro jobs list'")

    jobs_cancel = jobs_sub.add_parser(
        "cancel", parents=[common, server_flag],
        help="cancel a queued or running job",
    )
    jobs_cancel.add_argument("job_id")

    jobs_tail = jobs_sub.add_parser(
        "tail", parents=[common, server_flag],
        help="stream a job's round events as NDJSON to stdout",
    )
    jobs_tail.add_argument("job_id")
    jobs_tail.add_argument("--no-follow", action="store_true",
                           help="dump what exists and exit instead of "
                                "following to the terminal state")

    jobs_top = jobs_sub.add_parser(
        "top", parents=[common, server_flag],
        help="live dashboard: queue + running jobs with round progress, "
             "spend, ETA, and a completeness sparkline per job",
    )
    jobs_top.add_argument("--interval", type=float, default=1.0,
                          metavar="SECONDS",
                          help="seconds between refreshes (default 1.0)")
    jobs_top.add_argument("--iterations", type=int, default=None, metavar="N",
                          help="stop after N frames (default: run until ^C)")
    jobs_top.add_argument("--no-clear", action="store_true",
                          help="print frames one after another instead of "
                               "redrawing in place (for logs/pipes)")
    return parser


def _command_list() -> int:
    for experiment_id in experiment_ids():
        print(experiment_id)
    return 0


def _command_run(args: argparse.Namespace) -> int:
    kwargs = {"base_seed": args.seed}
    if args.reps is not None:
        kwargs["repetitions"] = args.reps
    if args.resume is not None:
        from repro.experiments.registry import resumable_experiment_ids, supports_kwarg

        if not supports_kwarg(args.experiment, "journal_dir"):
            print(
                f"error: experiment {args.experiment!r} does not support "
                f"--resume; resumable experiments: "
                f"{', '.join(resumable_experiment_ids())}",
                file=sys.stderr,
            )
            return 2
        kwargs["journal_dir"] = args.resume
    if args.workers is not None:
        from repro.experiments.registry import supports_kwarg

        if not supports_kwarg(args.experiment, "workers"):
            print(
                f"error: experiment {args.experiment!r} does not support "
                f"--workers (it does not repeat seeded simulations)",
                file=sys.stderr,
            )
            return 2
        kwargs["workers"] = args.workers
    result = run_experiment(args.experiment, **kwargs)
    print(render_experiment(result, precision=args.precision))
    if args.chart:
        from repro.io.ascii_chart import render_chart

        print()
        print(render_chart(result))
    if args.json:
        path = save_result(result, args.json)
        print(f"\nsaved JSON: {path}")
    if args.csv:
        path = write_series_csv(result, args.csv)
        print(f"saved CSV: {path}")
    if args.obs_store:
        from repro.obs.store import RunStore

        values = {
            f"{series.label}[x={point.x:g}]": float(point.mean)
            for series in result.series
            for point in series.points
        }
        record, _ = RunStore(args.obs_store).ingest(
            f"experiment:{args.experiment}",
            values,
            labels={"experiment": args.experiment, "seed": str(args.seed)},
        )
        print(f"recorded in store: {record.run_id} ({args.obs_store})")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.report import build_report

    text = build_report(repetitions=args.reps, base_seed=args.seed)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote report: {args.out}")
    else:
        print(text)
    return 0


def _command_tables() -> int:
    for table in all_tables():
        print(f"{table.table_id}: {table.title}")
        print(render_table(table.header, table.rows, precision=3))
        print()
    return 0


def _simulate_config(args: argparse.Namespace) -> SimulationConfig:
    """Resolve --scenario plus explicit flags into one config.

    Explicitly-passed flags always win; with a scenario the remaining
    knobs come from the spec, without one they keep the historical CLI
    defaults.
    """
    overrides = {
        name: value
        for name, value in (
            ("n_users", args.users),
            ("n_tasks", args.tasks),
            ("rounds", args.rounds),
            ("mechanism", args.mechanism),
            ("selector", args.selector),
            ("mobility", args.mobility),
            ("layout", args.layout),
            ("seed", args.seed),
            ("selector_timeout", args.selector_timeout),
            ("engine", args.engine),
        )
        if value is not None
    }
    if args.stream:
        overrides["stream_rounds"] = True
    if args.scenario is not None:
        from repro.scenarios import load_scenario

        return load_scenario(args.scenario).to_config(**overrides)
    return SimulationConfig().with_overrides(**overrides)


def _command_simulate(args: argparse.Namespace, command: Optional[str] = None) -> int:
    config = _simulate_config(args)
    tracer = None
    if args.trace:
        from repro.obs.trace import SpanTracer

        tracer = SpanTracer(metadata={
            "mechanism": config.mechanism,
            "selector": config.selector,
            "seed": config.seed,
            "n_users": config.n_users,
            "n_tasks": config.n_tasks,
            "rounds": config.rounds,
        })
    profiler = None
    if args.profile:
        from repro.obs.profiler import ResourceProfiler

        profiler = ResourceProfiler(
            interval=args.profile_interval, tracer=tracer
        ).start()
    stream_writer = None
    engine = None
    try:
        from repro.simulation import make_engine

        engine_kwargs = {}
        if tracer is not None:
            engine_kwargs["tracer"] = tracer
        if args.engine_workers is not None:
            engine_kwargs["workers"] = args.engine_workers
        engine = make_engine(config, **engine_kwargs)
        if args.events:
            from repro.io.events import RoundStreamWriter

            stream_writer = RoundStreamWriter(args.events, engine.world)
            engine.observers.append(stream_writer)
        result = engine.run()
    finally:
        if stream_writer is not None:
            stream_writer.close()
        if profiler is not None:
            profiler.stop()
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    summary = MetricsSummary.from_result(result)
    rows = [[name, value] for name, value in summary.as_dict().items()]
    print(render_table(["metric", "value"], rows, precision=4))
    if stream_writer is not None:
        print(
            f"\nstreamed events: {stream_writer.path} "
            f"({stream_writer.rounds_written} rounds)"
        )
    perf = result.perf_totals()
    if perf.selector_calls:
        per_call_ms = 1e3 * perf.selector_wall_time / perf.selector_calls
        print(
            f"\nperf: {perf.selector_calls} selections in "
            f"{perf.selector_wall_time:.3f}s ({per_call_ms:.2f} ms/call), "
            f"{perf.dp_states_expanded} DP states expanded, "
            f"problem cache {perf.problem_cache_hits} hits / "
            f"{perf.problem_cache_misses} misses "
            f"({100.0 * perf.cache_hit_rate:.1f}% hit rate)"
        )
    if args.selector_timeout is not None:
        print(
            f"\nselector degradations (greedy fallbacks): "
            f"{result.total_selector_fallbacks}"
        )
    if args.map:
        from repro.io.worldmap import render_world

        print()
        print(render_world(result.world))
    if profiler is not None:
        digest = profiler.summary()
        print(
            f"\nprofile: {digest['samples']} samples over "
            f"{digest.get('duration_seconds', 0.0):.3f}s, peak RSS "
            f"{digest.get('rss_peak_bytes', 0) / 2**20:.1f} MiB, CPU "
            f"{digest.get('cpu_seconds', 0.0):.3f}s, "
            f"{digest.get('gc_collections', 0)} GC collections"
        )
    trace_path = None
    if tracer is not None:
        from repro.obs.manifest import build_manifest, write_manifest

        trace_path = tracer.write_chrome(
            args.trace, counters=result.metrics_totals().as_dict()
        )
        manifest_path = write_manifest(
            build_manifest(config, base_seed=config.seed, command=command),
            trace_path,
        )
        print(f"\nsaved trace: {trace_path} ({len(tracer.spans)} spans)")
        print(f"saved manifest: {manifest_path}")
    if args.obs_store:
        import dataclasses

        from repro.obs.manifest import build_manifest
        from repro.obs.store import RunStore, registry_values

        registry = result.metrics_totals()
        if profiler is not None:
            profiler.fold_into(registry)
        values = registry_values(registry.as_dict())
        for name, value in summary.as_dict().items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values[f"summary/{name}"] = float(value)
        trace_rows = None
        if trace_path is not None:
            from repro.obs.trace import summarize

            trace_rows = [
                dataclasses.asdict(phase) for phase in summarize(trace_path)
            ]
        labels = {
            "mechanism": config.mechanism,
            "selector": config.selector,
            "mobility": config.mobility,
            "layout": config.layout,
            "engine": config.engine,
            "seed": str(config.seed),
        }
        if args.scenario is not None:
            labels["scenario"] = str(args.scenario)
        record, _ = RunStore(args.obs_store).ingest(
            "simulate",
            values,
            labels=labels,
            manifest=build_manifest(
                config, base_seed=config.seed, command=command
            ).as_dict(),
            metrics=registry.as_dict(),
            trace_summary=trace_rows,
        )
        print(f"\nrecorded in store: {record.run_id} ({args.obs_store})")
    return 0


def _command_trace_merge(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.obs.trace import merge_traces

    shards = []
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            shards.extend(sorted(path.glob("*.trace.jsonl")))
        else:
            shards.append(path)
    if not shards:
        print("error: no trace shards found", file=sys.stderr)
        return 2
    try:
        payload = merge_traces(shards)
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(_json.dumps(payload, indent=1))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    other = payload["otherData"]
    print(
        f"merged {len(shards)} shard(s), "
        f"{len(payload['traceEvents'])} event(s), "
        f"trace id {other['trace_id']} -> {args.out}"
    )
    for process in other["processes"]:
        parent = other["parents"].get(process) or "-"
        print(f"  {process} (parent span: {parent})")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "merge":
        return _command_trace_merge(args)
    from repro.obs.metrics import Histogram
    from repro.obs.trace import load_trace, summarize

    rows = [
        [
            phase.name,
            phase.count,
            phase.total_seconds,
            1e3 * phase.mean_seconds,
            1e3 * phase.p50_seconds,
            1e3 * phase.p95_seconds,
            1e3 * phase.max_seconds,
        ]
        for phase in summarize(args.path)
    ]
    print(render_table(
        ["phase", "count", "total s", "mean ms", "p50 ms", "p95 ms", "max ms"],
        rows, precision=args.precision,
    ))
    counters = load_trace(args.path)["counters"]
    if counters:
        counter_rows = []
        for series in sorted(counters):
            state = counters[series]
            kind = state.get("kind")
            if kind == "histogram":
                histogram = Histogram.from_dict(
                    {k: v for k, v in state.items() if k != "kind"}
                )
                value = f"count={histogram.count} sum={histogram.sum:.4g}"
                if histogram.count:
                    value += (
                        f" p50={histogram.percentile(50.0):.4g}"
                        f" p95={histogram.percentile(95.0):.4g}"
                    )
                else:
                    # percentile() is None on an empty histogram;
                    # render a placeholder instead of "None"/crashing.
                    value += " p50=- p95=-"
            else:
                value = state.get("value")
            counter_rows.append([series, kind, value])
        print()
        print(render_table(["series", "kind", "value"], counter_rows))
    return 0


def _command_show(args: argparse.Namespace) -> int:
    from repro.io.results import load_result

    result = load_result(args.path)
    if args.chart:
        from repro.io.ascii_chart import render_chart

        print(render_chart(result))
    else:
        print(render_experiment(result, precision=args.precision))
    return 0


def _command_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import PRESETS, dumps_toml

    rows = []
    for spec in PRESETS.values():
        config = spec.to_config()
        rows.append([
            spec.name, config.n_users, config.n_tasks, config.rounds,
            config.engine, config.arrival,
            "open" if config.dynamics else "closed",
            spec.description,
        ])
    print(render_table(
        ["scenario", "users", "tasks", "rounds", "engine", "arrival",
         "world", "description"],
        rows,
    ))
    if args.verbose_config:
        for spec in PRESETS.values():
            print()
            print(dumps_toml(spec.to_mapping()).rstrip())
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import config_sweep

    # Integer-typed fields arrive as floats from argparse; coerce when exact.
    values = [int(v) if float(v).is_integer() else v for v in args.values]
    kwargs = {"base_seed": args.seed}
    if args.scenario is not None:
        from repro.scenarios import load_scenario

        kwargs["base_config"] = load_scenario(args.scenario).to_config()
    if args.reps is not None:
        kwargs["repetitions"] = args.reps
    if args.resume is not None:
        kwargs["journal_dir"] = args.resume
    if args.workers is not None:
        kwargs["workers"] = args.workers
    result = config_sweep(args.field, values, **kwargs)
    print(render_experiment(result))
    if args.chart:
        from repro.io.ascii_chart import render_chart

        print()
        print(render_chart(result))
    return 0


def _command_obs(args: argparse.Namespace) -> int:
    from repro.obs.store import DEDUPE_LABEL, RunStore

    store = RunStore(args.store)

    if args.obs_command == "ingest":
        from repro.obs.store import ingest_bench_trajectory

        for path in args.paths:
            created = ingest_bench_trajectory(store, path, kind=args.kind)
            print(f"{path}: {len(created)} new runs (kind={args.kind})")
        print(f"store {store.root}: {len(store)} runs total")
        return 0

    if args.obs_command == "list":
        rows = [
            [
                entry["run_id"],
                entry["kind"],
                entry["created_at"],
                len(entry["values"]),
                ", ".join(
                    f"{k}={v}" for k, v in sorted(entry["labels"].items())
                    if k != DEDUPE_LABEL
                ),
            ]
            for entry in store.entries(kind=args.kind)
        ]
        print(render_table(["run", "kind", "created", "values", "labels"], rows))
        return 0

    if args.obs_command == "show":
        record = store.load(args.run_id)
        print(f"{record.run_id} (kind={record.kind}, created {record.created_at})")
        for key, value in sorted(record.labels.items()):
            print(f"  label {key} = {value}")
        if record.manifest:
            print(
                f"  manifest: config {record.manifest.get('config_fingerprint')} "
                f"git {record.manifest.get('git_revision')}"
            )
        print()
        print(render_table(
            ["value", "number"], sorted(record.values.items()), precision=6,
        ))
        return 0

    if args.obs_command == "diff":
        from repro.obs.report import diff_records

        run_a, run_b = store.load(args.run_a), store.load(args.run_b)
        rows = [
            [row["metric"], row["a"], row["b"], row["delta"], row["pct"]]
            for row in diff_records(run_a.values, run_b.values)
        ]
        print(render_table(
            ["metric", args.run_a, args.run_b, "delta", "pct"],
            rows, precision=6,
        ))
        return 0

    if args.obs_command == "regress":
        from repro.obs.regress import regress_store

        report = regress_store(store, kind=args.kind, window=args.window)
        rows = [
            [
                verdict.kind or "-",
                verdict.metric,
                verdict.status,
                "-" if verdict.candidate is None else verdict.candidate,
                "-" if verdict.baseline_median is None
                else verdict.baseline_median,
                f"{verdict.deviation:+.2f}",
                verdict.method,
            ]
            for verdict in report.verdicts
        ]
        print(render_table(
            ["kind", "metric", "status", "latest", "baseline", "score", "method"],
            rows, precision=4,
        ))
        for verdict in report.verdicts:
            if verdict.status in ("warn", "regressed"):
                print(f"{verdict.status}: {verdict.evidence}")
        print(
            f"\nstatus: {report.status} ({len(report.regressed)} regressed, "
            f"{len(report.warned)} warned, window={report.window})"
        )
        if args.json:
            from repro.io.atomic import atomic_write_text
            from repro.obs.report import summarize_json

            atomic_write_text(args.json, summarize_json(report) + "\n")
            print(f"wrote report JSON: {args.json}")
        return report.exit_code(warn_only=args.warn_only)

    if args.obs_command == "dashboard":
        from repro.obs.report import render_terminal_dashboard, write_html_dashboard

        # Write the artifact before the terminal echo: the file must land
        # even when stdout goes away mid-print (e.g. piped through head).
        if args.html:
            path = write_html_dashboard(store, args.html, window=args.window)
        print(render_terminal_dashboard(store, window=args.window))
        if args.html:
            print(f"\nwrote dashboard: {path}")
        return 0

    raise AssertionError(
        f"unhandled obs command {args.obs_command!r}"
    )  # pragma: no cover


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import JobService

    service = JobService(
        args.root,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        concurrency=args.concurrency,
        max_attempts=args.max_attempts,
        default_timeout=args.timeout,
        memory_limit_bytes=(
            args.memory_limit_mb * 1024 * 1024
            if args.memory_limit_mb is not None
            else None
        ),
    )

    async def _serve() -> None:
        await service.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0


def _parse_override_flags(pairs: List[str]) -> dict:
    """--override FIELD=VALUE flags into an overrides mapping.

    Values go through TOML-ish literal parsing: ints, floats, and
    true/false become typed; everything else stays a string (the
    service's validation reports type mismatches with the field name).
    """
    import json as _json

    overrides = {}
    for pair in pairs:
        field, sep, raw = pair.partition("=")
        if not sep or not field:
            raise SystemExit(
                f"error: --override needs FIELD=VALUE, got {pair!r}"
            )
        try:
            value = _json.loads(raw)
        except ValueError:
            value = raw
        overrides[field] = value
    return overrides


def _command_jobs_top(args: argparse.Namespace, client) -> int:
    """Redraw a metrics-fed dashboard until ^C (or --iterations frames).

    Each frame is one ``/metrics`` scrape plus one job listing; the
    per-job sparkline accumulates the completeness gauge across frames,
    so history lives client-side and the server stays stateless.
    """
    import time as _time

    from repro.obs.live import metric_value, parse_prometheus, render_top_frame

    history: dict = {}
    frame_no = 0
    try:
        while True:
            status, text = client.metrics()
            if status != 200:
                print(f"error: GET /metrics -> HTTP {status}", file=sys.stderr)
                return 1
            parsed = parse_prometheus(text)
            status, body = client.list_jobs()
            jobs = body.get("jobs", []) if status == 200 else []
            for job in jobs:
                if job["state"] != "running":
                    continue
                done = metric_value(
                    parsed, "repro_job_completeness", job=job["job_id"]
                )
                if done is not None:
                    history.setdefault(job["job_id"], []).append(done)
            frame = render_top_frame(parsed, jobs, history)
            if not args.no_clear and frame_no:
                # Home the cursor and clear below it: repaint in place.
                sys.stdout.write("\x1b[H\x1b[J")
            print(frame, flush=True)
            frame_no += 1
            if args.iterations is not None and frame_no >= args.iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _command_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.server.client import ServerClient, ServerUnavailable

    try:
        client = ServerClient.from_root(args.root)
    except ServerUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        if args.jobs_command == "submit":
            submission: dict = {}
            if args.scenario:
                submission["scenario"] = args.scenario
            overrides = _parse_override_flags(args.override)
            if overrides:
                submission["overrides"] = overrides
            if args.priority:
                submission["priority"] = args.priority
            if args.timeout is not None:
                submission["timeout"] = args.timeout
            status, body, headers = client.submit(submission)
            print(_json.dumps(body, indent=2, sort_keys=True))
            if status == 429:
                retry = headers.get("Retry-After", "?")
                print(f"queue full; retry after ~{retry}s", file=sys.stderr)
                return 3
            if status not in (200, 201):
                return 1
            if args.wait:
                final = client.wait(body["job"]["job_id"])
                print(_json.dumps(final, indent=2, sort_keys=True))
                return 0 if final["state"] == "done" else 1
            return 0

        if args.jobs_command == "list":
            status, body = client.list_jobs(state=args.state)
            if status != 200:
                print(_json.dumps(body, indent=2, sort_keys=True))
                return 1
            rows = [
                [
                    job["job_id"],
                    job["state"],
                    job["priority"],
                    job["attempts"],
                    job.get("runtime_seconds", "-"),
                    (job.get("error") or "")[:48],
                ]
                for job in body["jobs"]
            ]
            print(render_table(
                ["job", "state", "prio", "attempts", "runtime", "error"], rows
            ))
            return 0

        if args.jobs_command == "status":
            status, body = client.status(args.job_id)
            print(_json.dumps(body, indent=2, sort_keys=True))
            return 0 if status == 200 else 1

        if args.jobs_command == "cancel":
            status, body = client.cancel(args.job_id)
            print(_json.dumps(body, indent=2, sort_keys=True))
            return 0 if status in (200, 202) else 1

        if args.jobs_command == "tail":
            try:
                for line in client.tail(args.job_id, follow=not args.no_follow):
                    print(_json.dumps(line, sort_keys=True))
            except BrokenPipeError:
                # Downstream (| head, a closed pager) stopped reading;
                # that ends the tail, it is not an error.
                sys.stderr.close()
                return 0
            return 0

        if args.jobs_command == "top":
            return _command_jobs_top(args, client)
    except ServerUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    raise AssertionError(
        f"unhandled jobs command {args.jobs_command!r}"
    )  # pragma: no cover


def _command_env(args: argparse.Namespace) -> int:
    """``repro env rollout`` — seeded episodes through IncentiveEnv.

    Works without gymnasium (the shim action space samples); each
    episode is fully deterministic in its seed, including the random
    policy's draws, so CI can pin the printed returns if it wants to.
    """
    import json as _json

    import numpy as np

    from repro import api

    overrides = {}
    if args.users is not None:
        overrides["n_users"] = args.users
    if args.tasks is not None:
        overrides["n_tasks"] = args.tasks
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    env = api.make_env(
        scenario=args.scenario,
        obs=args.obs,
        actions=args.actions,
        reward=args.reward,
        **overrides,
    )
    rows = []
    try:
        for seed in range(args.seeds):
            observation, _ = env.reset(seed=seed)
            draws = np.random.default_rng(seed)
            episode_return, rounds, paid = 0.0, 0, 0.0
            terminated = False
            while not terminated:
                if args.policy == "random":
                    action = draws.uniform(
                        0.0, 1.0, size=env.action_space.shape
                    ).astype(np.float32)
                else:
                    action = np.full(
                        env.action_space.shape, 0.5, dtype=np.float32
                    )
                observation, reward, terminated, _, info = env.step(action)
                episode_return += reward
                rounds += 1
                paid += info["paid"]
            rows.append({
                "seed": seed,
                "rounds": rounds,
                "return": round(episode_return, 6),
                "paid": round(paid, 2),
                "completeness": round(info["completeness"], 4),
                "fingerprint": env.fingerprint()[:16],
            })
    finally:
        env.close()
    if args.json:
        for row in rows:
            print(_json.dumps(row))
    else:
        print(f"{'seed':>4}  {'rounds':>6}  {'return':>10}  "
              f"{'paid':>10}  {'completeness':>12}  fingerprint")
        for row in rows:
            print(f"{row['seed']:>4}  {row['rounds']:>6}  "
                  f"{row['return']:>10.4f}  {row['paid']:>10.2f}  "
                  f"{row['completeness']:>12.4f}  {row['fingerprint']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(
        verbosity=getattr(args, "verbose", 0),
        quiet=getattr(args, "quiet", False),
        json_output=getattr(args, "log_json", False),
    )
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "tables":
        return _command_tables()
    if args.command == "report":
        return _command_report(args)
    if args.command == "simulate":
        words = list(argv) if argv is not None else sys.argv[1:]
        return _command_simulate(args, command="repro " + " ".join(words))
    if args.command == "scenarios":
        return _command_scenarios(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "show":
        return _command_show(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "obs":
        return _command_obs(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "env":
        return _command_env(args)
    if args.command == "jobs":
        return _command_jobs(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
