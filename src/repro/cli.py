"""Command-line interface: regenerate any paper panel from a terminal.

Usage::

    repro list                       # show every experiment id
    repro run fig6a --reps 20        # regenerate one panel, print the rows
    repro run fig6a --json out.json  # ... and persist it
    repro run fig6a --resume ckpt/   # checkpoint + resume an interrupted run
    repro run fig6a --workers 4      # parallel repetitions, identical output
    repro tables                     # print Tables I-III
    repro simulate --users 100       # one run, full metrics summary
    repro simulate --selector-timeout 0.5   # ... with the DP watchdog armed
    repro simulate --trace out.json  # ... tracing phases (open in Perfetto)
    repro trace summarize out.json   # per-phase timings from a trace file

Every subcommand shares the logging flags ``-v/--verbose`` (repeatable),
``--quiet``, and ``--log-json``; the default is warnings-only to stderr,
so stdout output is unchanged.  ``python -m repro.cli`` works
identically when the console script is not on PATH.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import experiment_ids, run_experiment
from repro.experiments.tables import all_tables
from repro.io.csvio import write_series_csv
from repro.io.results import save_result
from repro.io.tables import render_experiment, render_table
from repro.metrics import MetricsSummary
from repro.obs.log import configure_logging
from repro.simulation import SimulationConfig, simulate


def _logging_flags() -> argparse.ArgumentParser:
    """The shared logging flags, as a parent parser every subcommand uses."""
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("logging")
    group.add_argument("-v", "--verbose", action="count", default=0,
                       help="log INFO (-v) or DEBUG (-vv) to stderr "
                            "(default: warnings only)")
    group.add_argument("--quiet", action="store_true",
                       help="log errors only")
    group.add_argument("--log-json", action="store_true",
                       help="emit log lines as JSON objects (for shippers/jq)")
    return common


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Pay On-demand' (ICDCS 2018) tables and figures.",
    )
    common = _logging_flags()
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", parents=[common],
                   help="list every registered experiment id")

    run = sub.add_parser("run", parents=[common],
                         help="run one experiment and print its rows")
    run.add_argument("experiment", help="experiment id (see 'repro list')")
    run.add_argument("--reps", type=int, default=None,
                     help="repetitions per configuration (default: REPRO_REPS or 20)")
    run.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="also save the result as JSON")
    run.add_argument("--csv", metavar="PATH", default=None,
                     help="also export the series as CSV")
    run.add_argument("--precision", type=int, default=2,
                     help="decimal places in the printed table")
    run.add_argument("--chart", action="store_true",
                     help="also render the series as an ASCII chart")
    run.add_argument("--resume", metavar="DIR", default=None,
                     help="checkpoint repetitions to journals in DIR and "
                          "resume an interrupted run from them (supported "
                          "by journaling experiments, e.g. fig6a, "
                          "sweep-budget)")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="fan repetitions across N simulation processes "
                          "(default: serial); aggregates are bit-identical "
                          "to a serial run and combine with --resume")

    sub.add_parser("tables", parents=[common],
                   help="print Tables I-III from the paper")

    report = sub.add_parser(
        "report", parents=[common],
        help="regenerate all paper panels into one markdown report",
    )
    report.add_argument("--reps", type=int, default=None,
                        help="repetitions per configuration")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--out", metavar="PATH", default=None,
                        help="write the report here instead of stdout")

    sim = sub.add_parser("simulate", parents=[common],
                         help="run one simulation, print the metrics")
    sim.add_argument("--users", type=int, default=100)
    sim.add_argument("--tasks", type=int, default=20)
    sim.add_argument("--rounds", type=int, default=15)
    sim.add_argument("--mechanism", default="on-demand")
    sim.add_argument("--selector", default="dp")
    sim.add_argument("--mobility", default="follow-path")
    sim.add_argument("--layout", default="uniform", choices=("uniform", "clustered"))
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--selector-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock deadline per task-selection call; on "
                          "breach the run degrades to the greedy solver and "
                          "reports the degradation count")
    sim.add_argument("--map", action="store_true",
                     help="render the final world state as an ASCII map")
    sim.add_argument("--trace", metavar="PATH", default=None,
                     help="record run/round/phase spans to PATH as a Chrome "
                          "trace-event file (open at https://ui.perfetto.dev) "
                          "and write a provenance manifest next to it; the "
                          "simulated numbers are bit-identical either way")

    trace = sub.add_parser("trace", help="inspect trace files written by --trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_sum = trace_sub.add_parser(
        "summarize", parents=[common],
        help="aggregate a trace file into per-phase timings",
    )
    trace_sum.add_argument("path", help="a trace file (Chrome JSON or JSONL)")
    trace_sum.add_argument("--precision", type=int, default=3,
                           help="decimal places in the printed table")

    show = sub.add_parser("show", parents=[common],
                          help="render a saved experiment JSON")
    show.add_argument("path", help="result file written by 'repro run --json'")
    show.add_argument("--chart", action="store_true",
                      help="render as an ASCII chart instead of a table")
    show.add_argument("--precision", type=int, default=2)

    sweep = sub.add_parser(
        "sweep", parents=[common],
        help="sweep any SimulationConfig field against the core metrics",
    )
    sweep.add_argument("field", help="a SimulationConfig field, e.g. n_users")
    sweep.add_argument("values", nargs="+", type=float, help="values to sweep")
    sweep.add_argument("--reps", type=int, default=None)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--chart", action="store_true")
    sweep.add_argument("--resume", metavar="DIR", default=None,
                       help="checkpoint repetitions to journals in DIR and "
                            "resume an interrupted sweep from them")
    sweep.add_argument("--workers", type=int, default=None, metavar="N",
                       help="simulation processes per sweep value "
                            "(default: serial)")
    return parser


def _command_list() -> int:
    for experiment_id in experiment_ids():
        print(experiment_id)
    return 0


def _command_run(args: argparse.Namespace) -> int:
    kwargs = {"base_seed": args.seed}
    if args.reps is not None:
        kwargs["repetitions"] = args.reps
    if args.resume is not None:
        from repro.experiments.registry import resumable_experiment_ids, supports_kwarg

        if not supports_kwarg(args.experiment, "journal_dir"):
            print(
                f"error: experiment {args.experiment!r} does not support "
                f"--resume; resumable experiments: "
                f"{', '.join(resumable_experiment_ids())}",
                file=sys.stderr,
            )
            return 2
        kwargs["journal_dir"] = args.resume
    if args.workers is not None:
        from repro.experiments.registry import supports_kwarg

        if not supports_kwarg(args.experiment, "workers"):
            print(
                f"error: experiment {args.experiment!r} does not support "
                f"--workers (it does not repeat seeded simulations)",
                file=sys.stderr,
            )
            return 2
        kwargs["workers"] = args.workers
    result = run_experiment(args.experiment, **kwargs)
    print(render_experiment(result, precision=args.precision))
    if args.chart:
        from repro.io.ascii_chart import render_chart

        print()
        print(render_chart(result))
    if args.json:
        path = save_result(result, args.json)
        print(f"\nsaved JSON: {path}")
    if args.csv:
        path = write_series_csv(result, args.csv)
        print(f"saved CSV: {path}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.report import build_report

    text = build_report(repetitions=args.reps, base_seed=args.seed)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote report: {args.out}")
    else:
        print(text)
    return 0


def _command_tables() -> int:
    for table in all_tables():
        print(f"{table.table_id}: {table.title}")
        print(render_table(table.header, table.rows, precision=3))
        print()
    return 0


def _command_simulate(args: argparse.Namespace, command: Optional[str] = None) -> int:
    config = SimulationConfig(
        n_users=args.users,
        n_tasks=args.tasks,
        rounds=args.rounds,
        mechanism=args.mechanism,
        selector=args.selector,
        mobility=args.mobility,
        layout=args.layout,
        seed=args.seed,
        selector_timeout=args.selector_timeout,
    )
    tracer = None
    if args.trace:
        from repro.obs.trace import SpanTracer

        tracer = SpanTracer(metadata={
            "mechanism": args.mechanism,
            "selector": args.selector,
            "seed": args.seed,
            "n_users": args.users,
            "n_tasks": args.tasks,
            "rounds": args.rounds,
        })
        result = simulate(config, tracer=tracer)
    else:
        result = simulate(config)
    summary = MetricsSummary.from_result(result)
    rows = [[name, value] for name, value in summary.as_dict().items()]
    print(render_table(["metric", "value"], rows, precision=4))
    perf = result.perf_totals()
    if perf.selector_calls:
        per_call_ms = 1e3 * perf.selector_wall_time / perf.selector_calls
        print(
            f"\nperf: {perf.selector_calls} selections in "
            f"{perf.selector_wall_time:.3f}s ({per_call_ms:.2f} ms/call), "
            f"{perf.dp_states_expanded} DP states expanded, "
            f"problem cache {perf.problem_cache_hits} hits / "
            f"{perf.problem_cache_misses} misses "
            f"({100.0 * perf.cache_hit_rate:.1f}% hit rate)"
        )
    if args.selector_timeout is not None:
        print(
            f"\nselector degradations (greedy fallbacks): "
            f"{result.total_selector_fallbacks}"
        )
    if args.map:
        from repro.io.worldmap import render_world

        print()
        print(render_world(result.world))
    if tracer is not None:
        from repro.obs.manifest import build_manifest, write_manifest

        trace_path = tracer.write_chrome(
            args.trace, counters=result.metrics_totals().as_dict()
        )
        manifest_path = write_manifest(
            build_manifest(config, base_seed=args.seed, command=command),
            trace_path,
        )
        print(f"\nsaved trace: {trace_path} ({len(tracer.spans)} spans)")
        print(f"saved manifest: {manifest_path}")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import load_trace, summarize

    rows = [
        [
            phase.name,
            phase.count,
            phase.total_seconds,
            1e3 * phase.mean_seconds,
            1e3 * phase.max_seconds,
        ]
        for phase in summarize(args.path)
    ]
    print(render_table(
        ["phase", "count", "total s", "mean ms", "max ms"],
        rows, precision=args.precision,
    ))
    counters = load_trace(args.path)["counters"]
    if counters:
        counter_rows = []
        for series in sorted(counters):
            state = counters[series]
            kind = state.get("kind")
            if kind == "histogram":
                value = f"count={state.get('count')} sum={state.get('sum'):.4g}"
            else:
                value = state.get("value")
            counter_rows.append([series, kind, value])
        print()
        print(render_table(["series", "kind", "value"], counter_rows))
    return 0


def _command_show(args: argparse.Namespace) -> int:
    from repro.io.results import load_result

    result = load_result(args.path)
    if args.chart:
        from repro.io.ascii_chart import render_chart

        print(render_chart(result))
    else:
        print(render_experiment(result, precision=args.precision))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import config_sweep

    # Integer-typed fields arrive as floats from argparse; coerce when exact.
    values = [int(v) if float(v).is_integer() else v for v in args.values]
    kwargs = {"base_seed": args.seed}
    if args.reps is not None:
        kwargs["repetitions"] = args.reps
    if args.resume is not None:
        kwargs["journal_dir"] = args.resume
    if args.workers is not None:
        kwargs["workers"] = args.workers
    result = config_sweep(args.field, values, **kwargs)
    print(render_experiment(result))
    if args.chart:
        from repro.io.ascii_chart import render_chart

        print()
        print(render_chart(result))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(
        verbosity=getattr(args, "verbose", 0),
        quiet=getattr(args, "quiet", False),
        json_output=getattr(args, "log_json", False),
    )
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "tables":
        return _command_tables()
    if args.command == "report":
        return _command_report(args)
    if args.command == "simulate":
        words = list(argv) if argv is not None else sys.argv[1:]
        return _command_simulate(args, command="repro " + " ".join(words))
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "show":
        return _command_show(args)
    if args.command == "sweep":
        return _command_sweep(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
