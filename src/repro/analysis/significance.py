"""Significance testing for paired mechanism comparisons.

The experiment runner pairs repetitions across mechanisms (repetition i
of every arm sees the same generated world), so the natural analyses are
*paired*: per-world differences, a bootstrap CI on their mean, a sign
test on their direction, and a paired permutation test on the mean
difference.  EXPERIMENTS.md's "who wins" statements are backed by these
(see ``tests/integration/test_significance_claims.py``).

All procedures are deterministic given the ``seed`` argument — the same
reproducibility contract as the simulations themselves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


def _paired_differences(a: Sequence[float], b: Sequence[float]) -> np.ndarray:
    if len(a) != len(b):
        raise ValueError(f"paired samples must have equal length: {len(a)} vs {len(b)}")
    if len(a) == 0:
        raise ValueError("paired samples must be non-empty")
    return np.asarray(a, dtype=float) - np.asarray(b, dtype=float)


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``values``.

    Raises:
        ValueError: for empty input, bad confidence, or resamples < 1.
    """
    if len(values) == 0:
        raise ValueError("bootstrap requires at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    arr = np.asarray(values, dtype=float)
    rng = np.random.default_rng(seed)
    samples = rng.choice(arr, size=(resamples, arr.size), replace=True)
    means = samples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(low), float(high)


def sign_test_pvalue(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sided exact sign test on paired samples (ties dropped).

    Tests H0: P(a > b) = 1/2 via the binomial distribution.  Returns 1.0
    when every pair ties (no evidence either way).
    """
    diffs = _paired_differences(a, b)
    wins = int((diffs > 0).sum())
    losses = int((diffs < 0).sum())
    n = wins + losses
    if n == 0:
        return 1.0
    k = max(wins, losses)
    # Two-sided tail: 2 * P[X >= k], X ~ Binomial(n, 1/2), capped at 1.
    tail = sum(math.comb(n, i) for i in range(k, n + 1)) / 2.0 ** n
    return min(1.0, 2.0 * tail)


def paired_permutation_pvalue(
    a: Sequence[float],
    b: Sequence[float],
    permutations: int = 5000,
    seed: int = 0,
) -> float:
    """Two-sided paired permutation test on the mean difference.

    Randomly flips the sign of each paired difference; the p-value is the
    share of sign assignments whose |mean| reaches the observed |mean|.
    Add-one smoothing keeps the estimate away from an impossible 0.
    """
    if permutations < 1:
        raise ValueError(f"permutations must be >= 1, got {permutations}")
    diffs = _paired_differences(a, b)
    observed = abs(diffs.mean())
    if np.allclose(diffs, 0.0):
        return 1.0
    rng = np.random.default_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=(permutations, diffs.size))
    permuted = np.abs((signs * diffs).mean(axis=1))
    exceed = int((permuted >= observed - 1e-12).sum())
    return (exceed + 1) / (permutations + 1)


@dataclass(frozen=True)
class PairedComparison:
    """A full paired read-out: who wins, by how much, how surely."""

    mean_difference: float
    ci_low: float
    ci_high: float
    wins: int
    losses: int
    ties: int
    sign_pvalue: float
    permutation_pvalue: float

    @property
    def n(self) -> int:
        return self.wins + self.losses + self.ties

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the permutation test rejects 'no difference' at alpha."""
        return self.permutation_pvalue < alpha


def compare_paired(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    seed: int = 0,
) -> PairedComparison:
    """Summarise a paired comparison of two samples (a minus b)."""
    diffs = _paired_differences(a, b)
    low, high = bootstrap_mean_ci(diffs, confidence=confidence, seed=seed)
    return PairedComparison(
        mean_difference=float(diffs.mean()),
        ci_low=low,
        ci_high=high,
        wins=int((diffs > 0).sum()),
        losses=int((diffs < 0).sum()),
        ties=int((diffs == 0).sum()),
        sign_pvalue=sign_test_pvalue(a, b),
        permutation_pvalue=paired_permutation_pvalue(a, b, seed=seed),
    )
