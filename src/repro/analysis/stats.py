"""Small-sample statistics for experiment aggregation.

The paper reports means over 100 repetitions; we additionally expose
sample standard deviations, normal-approximation confidence intervals,
and the five-number summary behind Fig. 5(b)'s boxplot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and sample (ddof=1) standard deviation.

    A single observation has zero deviation by convention (there is no
    spread to estimate, and experiments with reps=1 should not crash).

    Raises:
        ValueError: for an empty sequence.
    """
    if len(values) == 0:
        raise ValueError("mean_std() requires at least one value")
    arr = np.asarray(values, dtype=float)
    if arr.size == 1:
        return float(arr[0]), 0.0
    return float(arr.mean()), float(arr.std(ddof=1))


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation CI for the mean: mean ± z * s/sqrt(n).

    Uses the normal quantile rather than Student's t — at the repetition
    counts used here (>= 20) the difference is negligible and it avoids a
    scipy dependency in the core path.

    Raises:
        ValueError: for an empty sequence or a confidence outside (0, 1).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean, std = mean_std(values)
    n = len(values)
    if n == 1 or std == 0.0:
        return (mean, mean)
    z = _normal_quantile(0.5 + confidence / 2.0)
    half = z * std / math.sqrt(n)
    return (mean - half, mean + half)


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF via the Acklam rational approximation.

    Accurate to ~1e-9 over (0, 1), which is far beyond what a CI on 20
    noisy repetitions deserves.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile argument must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )


@dataclass(frozen=True)
class BoxplotSummary:
    """The five-number summary plus outliers (Tukey 1.5 x IQR fences)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    outliers: Tuple[float, ...]
    n: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @property
    def whisker_low(self) -> float:
        """Smallest observation above the lower Tukey fence."""
        return self.minimum

    @property
    def whisker_high(self) -> float:
        """Largest observation below the upper Tukey fence."""
        return self.maximum


def summarize_box(values: Sequence[float]) -> BoxplotSummary:
    """Five-number summary with Tukey outliers, for Fig. 5(b)-style boxplots.

    ``minimum``/``maximum`` are the whisker ends (most extreme values
    *inside* the 1.5 x IQR fences); points beyond land in ``outliers``.

    Raises:
        ValueError: for an empty sequence.
    """
    if len(values) == 0:
        raise ValueError("summarize_box() requires at least one value")
    arr = np.sort(np.asarray(values, dtype=float))
    q1, median, q3 = (float(q) for q in np.percentile(arr, [25, 50, 75]))
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inside = arr[(arr >= low_fence) & (arr <= high_fence)]
    outliers: List[float] = [float(v) for v in arr if v < low_fence or v > high_fence]
    # Degenerate all-outlier case cannot happen (median is always inside),
    # but guard anyway for float pathologies.
    if inside.size == 0:  # pragma: no cover - defensive
        inside = arr
    return BoxplotSummary(
        minimum=float(inside[0]),
        q1=q1,
        median=median,
        q3=q3,
        maximum=float(inside[-1]),
        outliers=tuple(outliers),
        n=int(arr.size),
    )
