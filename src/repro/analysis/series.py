"""Containers for experiment output: labelled (x, mean, std) series.

Every experiment module returns an :class:`ExperimentResult` — the exact
data behind one paper panel — which the I/O layer serialises and the CLI
renders as the paper-style table of rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.stats import mean_std


@dataclass(frozen=True)
class SeriesPoint:
    """One aggregated observation: mean ± std of ``n`` repetitions at ``x``."""

    x: float
    mean: float
    std: float = 0.0
    n: int = 1

    @classmethod
    def from_values(cls, x: float, values: Sequence[float]) -> "SeriesPoint":
        """Aggregate raw repetition values into a point."""
        mean, std = mean_std(values)
        return cls(x=float(x), mean=mean, std=std, n=len(values))


@dataclass(frozen=True)
class Series:
    """One labelled curve (e.g. one mechanism) across the sweep axis."""

    label: str
    points: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))
        xs = [p.x for p in self.points]
        if sorted(xs) != xs:
            raise ValueError(f"series {self.label!r} points must be sorted by x")

    @property
    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    @property
    def means(self) -> List[float]:
        return [p.mean for p in self.points]

    def point_at(self, x: float) -> SeriesPoint:
        """The point at an exact x value.

        Raises:
            KeyError: if no point has that x.
        """
        for point in self.points:
            if point.x == x:
                return point
        raise KeyError(f"series {self.label!r} has no point at x={x}")


@dataclass
class ExperimentResult:
    """Everything one paper panel needs: axes, curves, provenance.

    Args:
        experiment_id: e.g. ``"fig6a"`` — matches DESIGN.md's index.
        title: human title, e.g. "Coverage vs number of users".
        x_label / y_label: axis names as in the paper.
        series: one curve per compared algorithm/mechanism.
        metadata: run provenance (repetitions, seeds, config deviations).
    """

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        """Fetch one curve by its label.

        Raises:
            KeyError: if no series carries that label.
        """
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(
            f"{self.experiment_id} has no series {label!r}; "
            f"available: {[s.label for s in self.series]}"
        )

    @property
    def labels(self) -> List[str]:
        return [s.label for s in self.series]

    def rows(self) -> List[List[Any]]:
        """Tabular form: one row per x, one column per series mean.

        This is the "same rows the paper reports" rendering used by the
        CLI and the benchmark harness.
        """
        xs: List[float] = sorted({p.x for s in self.series for p in s.points})
        table: List[List[Any]] = []
        for x in xs:
            row: List[Any] = [x]
            for entry in self.series:
                try:
                    row.append(entry.point_at(x).mean)
                except KeyError:
                    row.append(None)
            table.append(row)
        return table

    def header(self) -> List[str]:
        """Column names matching :meth:`rows`."""
        return [self.x_label] + [s.label for s in self.series]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (see :mod:`repro.io.results`)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [
                {
                    "label": s.label,
                    "points": [
                        {"x": p.x, "mean": p.mean, "std": p.std, "n": p.n}
                        for p in s.points
                    ],
                }
                for s in self.series
            ],
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`as_dict`."""
        series = [
            Series(
                label=entry["label"],
                points=tuple(
                    SeriesPoint(
                        x=point["x"],
                        mean=point["mean"],
                        std=point.get("std", 0.0),
                        n=point.get("n", 1),
                    )
                    for point in entry["points"]
                ),
            )
            for entry in payload["series"]
        ]
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            x_label=payload["x_label"],
            y_label=payload["y_label"],
            series=series,
            metadata=payload.get("metadata", {}),
        )
