"""Shape predicates: the language EXPERIMENTS.md claims are stated in.

Reproductions on a different substrate cannot match absolute numbers;
what must hold is the *shape* of each figure — who wins, monotonicity,
where curves cross.  These predicates make those claims executable (the
integration tests call them on freshly run experiments).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis.series import Series


def is_monotonic(
    values: Sequence[float], increasing: bool = True, tolerance: float = 0.0
) -> bool:
    """Whether a sequence never moves against the stated direction.

    ``tolerance`` forgives small counter-moves (simulation noise): each
    step may regress by at most that much.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    for before, after in zip(values, values[1:]):
        if increasing and after < before - tolerance:
            return False
        if not increasing and after > before + tolerance:
            return False
    return True


def dominates(
    upper: Series, lower: Series, tolerance: float = 0.0
) -> bool:
    """Whether ``upper``'s mean is >= ``lower``'s at every shared x.

    Only x values present in both series are compared; the claim is
    vacuously true if they share none.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    shared = set(upper.xs) & set(lower.xs)
    return all(
        upper.point_at(x).mean >= lower.point_at(x).mean - tolerance
        for x in shared
    )


def final_value(series: Series) -> float:
    """The mean at the largest x (where "until the last round" metrics land).

    Raises:
        ValueError: for an empty series.
    """
    if not series.points:
        raise ValueError(f"series {series.label!r} is empty")
    return series.points[-1].mean


def crossover_points(a: Series, b: Series) -> List[Tuple[float, float]]:
    """The consecutive shared-x pairs between which the sign of (a - b) flips.

    Returns a list of ``(x_before, x_after)`` intervals.  Exact ties do
    not count as a flip (the sign must actually reverse).
    """
    shared = sorted(set(a.xs) & set(b.xs))
    flips: List[Tuple[float, float]] = []
    previous_sign = 0
    previous_x = None
    for x in shared:
        diff = a.point_at(x).mean - b.point_at(x).mean
        sign = (diff > 0) - (diff < 0)
        if sign != 0:
            if previous_sign != 0 and sign != previous_sign:
                flips.append((previous_x, x))
            previous_sign = sign
            previous_x = x
        else:
            previous_x = x
    return flips
