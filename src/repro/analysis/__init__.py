"""Statistical aggregation and series containers for experiments.

- :mod:`~repro.analysis.stats` — mean/std/confidence intervals and
  five-number boxplot summaries (Fig. 5(b) is a boxplot).
- :mod:`~repro.analysis.series` — the containers experiment modules
  return: labelled series of (x, mean, std) points with metadata.
- :mod:`~repro.analysis.shape` — predicates over series ("curve A
  dominates curve B", "monotone increasing", "crossover at x") used by
  the integration tests and EXPERIMENTS.md to state paper-shape claims
  precisely.
"""

from repro.analysis.stats import (
    mean_std,
    confidence_interval,
    BoxplotSummary,
    summarize_box,
)
from repro.analysis.series import SeriesPoint, Series, ExperimentResult
from repro.analysis.shape import (
    is_monotonic,
    dominates,
    final_value,
    crossover_points,
)
from repro.analysis.significance import (
    bootstrap_mean_ci,
    sign_test_pvalue,
    paired_permutation_pvalue,
    compare_paired,
    PairedComparison,
)

__all__ = [
    "mean_std",
    "confidence_interval",
    "BoxplotSummary",
    "summarize_box",
    "SeriesPoint",
    "Series",
    "ExperimentResult",
    "is_monotonic",
    "dominates",
    "final_value",
    "crossover_points",
    "bootstrap_mean_ci",
    "sign_test_pvalue",
    "paired_permutation_pvalue",
    "compare_paired",
    "PairedComparison",
]
