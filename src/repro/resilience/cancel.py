"""Cooperative cancellation: tokens an operation polls at safe points.

The service layer needs three ways to stop a running simulation — a
client cancel, a wall-clock deadline, and a cross-process kill switch —
and the engine needs exactly one thing to poll.  A
:class:`CancellationToken` is that one thing: ``cancelled`` says whether
to stop, ``reason`` says why, and :meth:`~CancellationToken.
raise_if_cancelled` turns the answer into a structured
:class:`~repro.resilience.errors.OperationCancelled` at the caller's own
check point.  Cancellation is *cooperative* by design: the operation
stops at a clean boundary (the engine checks between rounds and every
few hundred selector calls), so completed work — journal lines, streamed
round events — is never torn.

Flavours:

- :class:`FlagToken` — in-memory, flipped by :meth:`~FlagToken.cancel`
  (same-process cancellation, tests);
- :class:`DeadlineToken` — trips when a monotonic clock passes the
  deadline (per-job wall-clock timeouts; reason ``"timeout"``);
- :class:`FileToken` — trips when a flag file exists (how the server
  process reaches into a worker process: the supervisor touches the
  file, the worker's next poll sees it);
- :class:`CompositeToken` — first tripped member wins (a worker runs
  under file + deadline at once).

Polling a token is cheap (an attribute read, a clock read, or one
``stat``), and tokens never touch the simulation's random streams, so a
run that is *not* cancelled is bit-identical to one executed without a
token at all.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.resilience.errors import OperationCancelled

#: The reason DeadlineToken reports; the job service maps it to TIMED_OUT.
TIMEOUT_REASON = "timeout"


class CancellationToken:
    """The polling interface (never cancelled; subclasses override).

    The base class doubles as the zero-cost default: an operation can
    hold one unconditionally and poll it without ``if token is not
    None`` guards.
    """

    @property
    def cancelled(self) -> bool:
        return False

    @property
    def reason(self) -> str:
        return "cancelled"

    def raise_if_cancelled(self) -> None:
        """Raise :class:`OperationCancelled` when the token has tripped."""
        if self.cancelled:
            raise OperationCancelled(
                f"operation cancelled ({self.reason})", reason=self.reason
            )


#: A shared never-cancelled token (stateless, safe to share everywhere).
NEVER_CANCELLED = CancellationToken()


class FlagToken(CancellationToken):
    """In-memory cancellation, flipped once by :meth:`cancel`.

    >>> token = FlagToken()
    >>> token.cancelled
    False
    >>> token.cancel("shutting down")
    >>> token.cancelled, token.reason
    (True, 'shutting down')
    """

    def __init__(self) -> None:
        self._cancelled = False
        self._reason = "cancelled"

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def reason(self) -> str:
        return self._reason

    def cancel(self, reason: str = "cancelled") -> None:
        """Trip the token (idempotent; the first reason sticks)."""
        if not self._cancelled:
            self._cancelled = True
            self._reason = reason


class DeadlineToken(CancellationToken):
    """Trips once ``seconds`` of monotonic time have elapsed.

    Args:
        seconds: the wall-clock budget (must be positive).
        clock: injectable monotonic clock for tests.
    """

    def __init__(
        self, seconds: float, clock: Callable[[], float] = time.monotonic
    ):
        if seconds <= 0:
            raise ValueError(f"deadline must be positive seconds, got {seconds}")
        self._clock = clock
        self._deadline = clock() + seconds
        self._budget = seconds

    @property
    def cancelled(self) -> bool:
        return self._clock() >= self._deadline

    @property
    def reason(self) -> str:
        return TIMEOUT_REASON

    @property
    def remaining(self) -> float:
        """Seconds left before the token trips (never negative)."""
        return max(0.0, self._deadline - self._clock())

    def raise_if_cancelled(self) -> None:
        if self.cancelled:
            raise OperationCancelled(
                f"deadline of {self._budget:g}s exceeded", reason=self.reason
            )


class FileToken(CancellationToken):
    """Trips when a flag file exists (cross-process cancellation).

    The file's first line, when readable, becomes the reason — the
    supervisor writes ``"timeout"`` or ``"cancelled by client"`` so the
    worker exits with the right terminal state.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    @property
    def cancelled(self) -> bool:
        return self.path.exists()

    @property
    def reason(self) -> str:
        try:
            first_line = self.path.read_text().splitlines()
            return first_line[0].strip() if first_line else "cancelled"
        except OSError:
            return "cancelled"

    def trip(self, reason: str = "cancelled") -> None:
        """Create the flag file (the *other* process's cancel switch)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(reason + "\n")


class CompositeToken(CancellationToken):
    """Cancelled as soon as any member token is; first tripped wins."""

    def __init__(self, tokens: Sequence[CancellationToken]):
        self.tokens = tuple(tokens)

    @property
    def cancelled(self) -> bool:
        return any(token.cancelled for token in self.tokens)

    @property
    def reason(self) -> str:
        for token in self.tokens:
            if token.cancelled:
                return token.reason
        return "cancelled"

    def raise_if_cancelled(self) -> None:
        for token in self.tokens:
            token.raise_if_cancelled()


def maybe_deadline(seconds: Optional[float]) -> CancellationToken:
    """A :class:`DeadlineToken`, or the free never-cancelled token."""
    if seconds is None:
        return NEVER_CANCELLED
    return DeadlineToken(seconds)
