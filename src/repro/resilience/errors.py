"""The structured error taxonomy of the resilience layer.

Every failure the library can recover from (or at least explain) has a
dedicated exception type rooted at :class:`ReproError`.  Each type also
inherits the closest builtin (``ValueError``, ``TimeoutError``,
``OSError``) so existing ``except ValueError`` call sites — and the
seed test suite — keep working unchanged.

The taxonomy answers the one question an operator of a long campaign
actually has: *can I retry this?*

- :class:`ConfigError` — no; fix the configuration and start over.
- :class:`ResultCorruption` — no; the artifact is damaged, re-run the
  experiment that produced it.
- :class:`SelectorTimeout` — per-call; the watchdog already degraded to
  the greedy solver unless explicitly told not to.
- :class:`TransientIOError` — yes; :func:`repro.resilience.retry.with_retries`
  does so with bounded exponential backoff.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every structured error raised by this library."""


class ConfigError(ReproError, ValueError):
    """A configuration knob is nonsensical (negative budget, zero tasks,
    inverted ranges, …).

    Raised eagerly at construction/validation time so a bad sweep dies
    before its first simulation, with a message naming the offending
    field and the accepted range — not ten frames deep in the engine.
    """


class SelectorTimeout(ReproError, TimeoutError):
    """A ``Selector.select`` call exceeded its wall-clock deadline.

    Only raised when the watchdog has no fallback solver; with the
    default greedy fallback the timeout is recorded as a degradation
    instead (see :class:`repro.selection.watchdog.TimeBoundedSelector`).
    """


class MechanismPriceError(ReproError, ValueError):
    """An incentive mechanism returned a malformed price map.

    The engine validates prices at the mechanism boundary: every
    published task must be priced with a finite, positive reward.  The
    message names the mechanism and the offending task ids so a buggy
    mechanism is identified immediately instead of surfacing as a bare
    ``KeyError`` inside the selection loop.
    """


class ResultCorruption(ReproError, ValueError):
    """A persisted artifact (result JSON, run journal) failed to parse.

    The message names the path and the recommended remediation
    (re-run the experiment, or delete the journal and restart).
    """


class TransientIOError(ReproError, OSError):
    """An IO operation failed in a way that is worth retrying.

    Raised by fault injectors and by retry wrappers when a bounded
    retry budget is exhausted.
    """


class OperationCancelled(ReproError, RuntimeError):
    """A long-running operation was cooperatively cancelled.

    Raised by :meth:`repro.resilience.cancel.CancellationToken.
    raise_if_cancelled` at the operation's own check points (the engine
    checks between rounds and inside the selection loop), so the
    operation stops at a clean boundary instead of being killed mid-
    write.  ``reason`` distinguishes a client cancel from a deadline:
    the job service maps ``"timeout"`` reasons to the ``TIMED_OUT``
    terminal state and everything else to ``CANCELLED``.
    """

    def __init__(self, message: str, reason: str = "cancelled"):
        super().__init__(message)
        self.reason = reason
