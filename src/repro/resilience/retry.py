"""Bounded retry with exponential backoff for transient faults.

The policy is deliberately small: retries are for *transient* faults
(a busy filesystem, a flaky network mount), never for logic errors —
a :class:`~repro.resilience.errors.ConfigError` or a corrupt artifact
must surface immediately, so the default retryable set is exactly
``(TransientIOError, OSError)``.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple, Type, TypeVar

from repro.obs.log import get_logger
from repro.resilience.errors import TransientIOError

log = get_logger("resilience.retry")

T = TypeVar("T")

#: Exceptions retried by default: the library's own transient marker
#: plus raw OS-level failures (which includes every builtin IO error).
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (TransientIOError, OSError)


def backoff_delays(
    attempts: int, base_delay: float = 0.05, multiplier: float = 2.0
) -> Tuple[float, ...]:
    """The sleep schedule between ``attempts`` tries (length attempts-1).

    >>> backoff_delays(4, base_delay=0.1, multiplier=2.0)
    (0.1, 0.2, 0.4)
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    return tuple(base_delay * multiplier**i for i in range(attempts - 1))


def with_retries(
    fn: Callable[[], T],
    attempts: int = 3,
    base_delay: float = 0.05,
    multiplier: float = 2.0,
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` up to ``attempts`` times, backing off between tries.

    Non-retryable exceptions propagate immediately; the final retryable
    exception propagates unchanged once the budget is exhausted, so the
    caller sees the true cause, not a wrapper.

    Args:
        fn: the zero-argument operation to attempt.
        attempts: total tries (>= 1); 1 means "no retry".
        base_delay: first backoff sleep in seconds.
        multiplier: backoff growth factor per retry.
        retryable: exception types worth retrying.
        sleep: injectable clock for tests.
    """
    delays = backoff_delays(attempts, base_delay, multiplier)
    for attempt in range(attempts):
        try:
            return fn()
        except retryable as exc:
            if attempt == attempts - 1:
                raise
            log.warning(
                "transient failure; backing off before retry",
                extra={
                    "attempt": attempt + 1,
                    "attempts": attempts,
                    "delay_s": delays[attempt],
                    "error": repr(exc),
                },
            )
            sleep(delays[attempt])
    raise AssertionError("unreachable")  # pragma: no cover
