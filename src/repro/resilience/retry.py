"""Bounded retry with exponential backoff for transient faults.

The policy is deliberately small: retries are for *transient* faults
(a busy filesystem, a flaky network mount), never for logic errors —
a :class:`~repro.resilience.errors.ConfigError` or a corrupt artifact
must surface immediately, so the default retryable set is exactly
``(TransientIOError, OSError)``.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.obs.log import get_logger
from repro.resilience.errors import TransientIOError

log = get_logger("resilience.retry")

T = TypeVar("T")

#: Exceptions retried by default: the library's own transient marker
#: plus raw OS-level failures (which includes every builtin IO error).
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (TransientIOError, OSError)


def backoff_delays(
    attempts: int,
    base_delay: float = 0.05,
    multiplier: float = 2.0,
    max_delay: Optional[float] = None,
    jitter: str = "none",
    rng: Optional[random.Random] = None,
) -> Tuple[float, ...]:
    """The sleep schedule between ``attempts`` tries (length attempts-1).

    The default schedule is pure exponential and fully deterministic —
    right for single-process retries and for tests.  A *fleet* of
    restarting workers must not share that property: identical schedules
    restart crashed processes in lockstep (the thundering herd), so the
    supervisor asks for ``jitter="decorrelated"`` — the AWS-style
    decorrelated jitter, where each delay is drawn uniformly from
    ``[base_delay, 3 * previous]`` — which spreads restarts out while
    keeping the same growth rate in expectation.  ``max_delay`` caps
    every delay either way, so a long outage never produces an
    unboundedly sleepy worker.

    Args:
        attempts: total tries (>= 1); the schedule has ``attempts - 1``
            sleeps.
        base_delay: first backoff sleep in seconds (and the jitter
            floor).
        multiplier: growth factor per retry (deterministic mode only).
        max_delay: inclusive cap on every delay (None = uncapped).
        jitter: ``"none"`` (deterministic exponential) or
            ``"decorrelated"``.
        rng: the random source for jitter — inject a seeded
            ``random.Random`` to make a jittered schedule reproducible
            in tests; defaults to a fresh unseeded one.

    >>> backoff_delays(4, base_delay=0.1, multiplier=2.0)
    (0.1, 0.2, 0.4)
    >>> backoff_delays(4, base_delay=0.1, max_delay=0.25)
    (0.1, 0.2, 0.25)
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if jitter not in ("none", "decorrelated"):
        raise ValueError(
            f"jitter must be 'none' or 'decorrelated', got {jitter!r}"
        )
    if max_delay is not None and max_delay < base_delay:
        raise ValueError(
            f"max_delay ({max_delay}) must be >= base_delay ({base_delay})"
        )
    cap = float("inf") if max_delay is None else max_delay
    if jitter == "none":
        return tuple(
            min(cap, base_delay * multiplier**i) for i in range(attempts - 1)
        )
    rng = rng if rng is not None else random.Random()
    delays = []
    previous = base_delay
    for _ in range(attempts - 1):
        previous = min(cap, rng.uniform(base_delay, 3.0 * previous))
        delays.append(previous)
    return tuple(delays)


def with_retries(
    fn: Callable[[], T],
    attempts: int = 3,
    base_delay: float = 0.05,
    multiplier: float = 2.0,
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE,
    sleep: Callable[[float], None] = time.sleep,
    max_delay: Optional[float] = None,
    jitter: str = "none",
    rng: Optional[random.Random] = None,
) -> T:
    """Call ``fn`` up to ``attempts`` times, backing off between tries.

    Non-retryable exceptions propagate immediately; the final retryable
    exception propagates unchanged once the budget is exhausted, so the
    caller sees the true cause, not a wrapper.

    Args:
        fn: the zero-argument operation to attempt.
        attempts: total tries (>= 1); 1 means "no retry".
        base_delay: first backoff sleep in seconds.
        multiplier: backoff growth factor per retry.
        retryable: exception types worth retrying.
        sleep: injectable clock for tests.
        max_delay / jitter / rng: see :func:`backoff_delays`.
    """
    delays = backoff_delays(
        attempts, base_delay, multiplier, max_delay=max_delay,
        jitter=jitter, rng=rng,
    )
    for attempt in range(attempts):
        try:
            return fn()
        except retryable as exc:
            if attempt == attempts - 1:
                raise
            log.warning(
                "transient failure; backing off before retry",
                extra={
                    "attempt": attempt + 1,
                    "attempts": attempts,
                    "delay_s": delays[attempt],
                    "error": repr(exc),
                },
            )
            sleep(delays[attempt])
    raise AssertionError("unreachable")  # pragma: no cover
