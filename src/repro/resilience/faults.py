"""Deterministic fault injection for resilience testing.

Every injector consumes a :class:`FaultPlan` — a seeded (or explicitly
scripted) schedule of fail/pass decisions — so a fault scenario is
exactly reproducible: the same plan makes the same call fail on every
run.  The injectors mirror the real failure modes the resilience layer
recovers from:

- :class:`FaultySelector` — a selector that raises or stalls mid-round
  (exercises the :class:`~repro.selection.watchdog.TimeBoundedSelector`
  degradation path);
- :class:`FaultyMechanism` — a mechanism that omits task ids from its
  price map (exercises the engine's boundary validation);
- :class:`FlakyIO` — a filesystem operation that fails transiently
  (exercises :func:`~repro.resilience.retry.with_retries`);
- :class:`CrashingMetric` — a metric that kills the process-equivalent
  mid-campaign (exercises journal resume).

These live in the library, not the test tree, so downstream users can
drill their own deployments the same way.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional, Sequence, Set

import numpy as np

from repro.resilience.errors import ReproError, TransientIOError


class InjectedFault(ReproError):
    """The deliberate failure raised by fault injectors.

    A dedicated type so tests (and retry policies) can distinguish a
    drill from a real defect.
    """


class FaultPlan:
    """A deterministic schedule of fail/pass decisions.

    Two modes, mutually exclusive:

    - ``fail_calls``: an explicit set of 0-based call indices that fail
      (scripted faults — "the 8th write dies");
    - ``rate`` + ``seed``: each call fails with probability ``rate``,
      drawn from a dedicated seeded stream (randomised drills).

    Args:
        fail_calls: 0-based indices of calls that should fail.
        rate: per-call failure probability in [0, 1].
        seed: root seed for the rate mode (required when rate > 0).
        max_failures: stop injecting after this many failures (None =
            unlimited) — lets a drill guarantee eventual success.
    """

    def __init__(
        self,
        fail_calls: Iterable[int] = (),
        rate: float = 0.0,
        seed: Optional[int] = None,
        max_failures: Optional[int] = None,
    ):
        self.fail_calls: Set[int] = set(fail_calls)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if self.fail_calls and rate > 0.0:
            raise ValueError("use either fail_calls or rate, not both")
        if rate > 0.0 and seed is None:
            raise ValueError("rate mode needs a seed for determinism")
        self.rate = rate
        self.max_failures = max_failures
        self.calls = 0
        self.failures = 0
        self._rng = (
            np.random.Generator(np.random.PCG64(seed)) if seed is not None else None
        )

    def next(self) -> bool:
        """Advance one call; True if this call should fail."""
        index = self.calls
        self.calls += 1
        if self.max_failures is not None and self.failures >= self.max_failures:
            return False
        if self.rate > 0.0:
            fail = bool(self._rng.random() < self.rate)
        else:
            fail = index in self.fail_calls
        if fail:
            self.failures += 1
        return fail


class FaultySelector:
    """A selector wrapper that raises or stalls on scheduled calls.

    Args:
        inner: the real selector answering non-faulted calls.
        plan: the fault schedule (one decision per ``select`` call).
        mode: ``"raise"`` (raise :class:`InjectedFault`) or ``"stall"``
            (sleep ``stall_seconds`` before answering — the pathological
            Eq. 11–12 instance, in miniature).
        stall_seconds: how long a stalled call sleeps.
    """

    name = "faulty"

    def __init__(self, inner, plan: FaultPlan, mode: str = "raise",
                 stall_seconds: float = 1.0):
        if mode not in ("raise", "stall"):
            raise ValueError(f"mode must be 'raise' or 'stall', got {mode!r}")
        self.inner = inner
        self.plan = plan
        self.mode = mode
        self.stall_seconds = stall_seconds

    def select(self, problem):
        if self.plan.next():
            if self.mode == "raise":
                raise InjectedFault(
                    f"injected selector failure on call {self.plan.calls - 1}"
                )
            time.sleep(self.stall_seconds)
        return self.inner.select(problem)


class FaultyMechanism:
    """A mechanism wrapper that omits task ids from scheduled price maps.

    Wraps any :class:`~repro.core.mechanisms.base.IncentiveMechanism`;
    on a faulted round it drops the ``drop_count`` highest task ids from
    the inner mechanism's (valid) price map, producing exactly the
    malformed output the engine's boundary validation must catch.
    """

    name = "faulty"

    def __init__(self, inner, plan: FaultPlan, drop_count: int = 1):
        if drop_count < 1:
            raise ValueError(f"drop_count must be >= 1, got {drop_count}")
        self.inner = inner
        self.plan = plan
        self.drop_count = drop_count

    def initialize(self, world, rng) -> None:
        self.inner.initialize(world, rng)

    def rewards(self, view):
        prices = self.inner.rewards(view)
        if self.plan.next() and prices:
            for task_id in sorted(prices, reverse=True)[: self.drop_count]:
                prices = {k: v for k, v in prices.items() if k != task_id}
        return prices


class FlakyIO:
    """A callable wrapper that fails scheduled calls with a transient error.

    Wrap any filesystem function (``os.replace``, ``Path.write_text``
    via monkeypatching) to drill the retry path::

        flaky = FlakyIO(os.replace, FaultPlan(fail_calls={0}))
        monkeypatch.setattr("repro.io.atomic.os.replace", flaky)
    """

    def __init__(
        self,
        real: Callable,
        plan: FaultPlan,
        exc_factory: Callable[[int], BaseException] = None,
    ):
        self.real = real
        self.plan = plan
        self.exc_factory = exc_factory or (
            lambda call: TransientIOError(f"injected IO failure on call {call}")
        )

    def __call__(self, *args, **kwargs):
        if self.plan.next():
            raise self.exc_factory(self.plan.calls - 1)
        return self.real(*args, **kwargs)


class CrashingMetric:
    """A metric wrapper that raises :class:`InjectedFault` on its Nth call.

    Interrupts a journaled campaign mid-run — the repetition being
    measured dies *before* it is checkpointed, exactly like a process
    crash between ``simulate`` and the journal append.

    Args:
        metric: the real metric function.
        crash_on_call: 1-based invocation index that crashes.
        crash_once: after the scheduled crash, later calls succeed
            (models the resumed process).
    """

    def __init__(self, metric: Callable, crash_on_call: int,
                 crash_once: bool = True):
        if crash_on_call < 1:
            raise ValueError(f"crash_on_call must be >= 1, got {crash_on_call}")
        self.metric = metric
        self.crash_on_call = crash_on_call
        self.crash_once = crash_once
        self.calls = 0
        self.crashed = 0

    def __call__(self, result):
        self.calls += 1
        if self.crash_once:
            due = self.crashed == 0 and self.calls == self.crash_on_call
        else:
            due = self.calls >= self.crash_on_call
        if due:
            self.crashed += 1
            raise InjectedFault(
                f"injected metric crash on call {self.calls}"
            )
        return self.metric(result)


def scripted_failures(*indices: int) -> FaultPlan:
    """Shorthand: a plan failing exactly the given 0-based call indices."""
    return FaultPlan(fail_calls=indices)


#: Sequence exported for docs/tests enumerating the drill arsenal.
INJECTORS: Sequence[type] = (
    FaultySelector,
    FaultyMechanism,
    FlakyIO,
    CrashingMetric,
)
