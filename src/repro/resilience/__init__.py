"""Fault tolerance for long-running experiment campaigns.

Four pillars (see docs/architecture.md, "Fault tolerance & resumability"):

- **error taxonomy** (:mod:`repro.resilience.errors`) — every failure
  the library can explain has a typed exception rooted at
  :class:`ReproError`;
- **bounded retry** (:mod:`repro.resilience.retry`) — exponential
  backoff for transient IO faults, nothing else;
- **run journal** (:mod:`repro.resilience.journal`) — crash-safe
  per-repetition checkpoints making campaigns resumable bit-identically;
- **fault injection** (:mod:`repro.resilience.faults`) — seeded
  injectors that prove every recovery path under test;
- **cooperative cancellation** (:mod:`repro.resilience.cancel`) —
  tokens (flag / deadline / file / composite) that long operations poll
  at safe boundaries, raising :class:`OperationCancelled` so timeouts
  and client cancels stop a run cleanly.

The selector watchdog lives with the solvers it guards
(:class:`repro.selection.watchdog.TimeBoundedSelector`) but is part of
the same subsystem.

:mod:`~repro.resilience.faults` is intentionally *not* imported here:
it depends on the selection/mechanism layers, which themselves import
this package for the error types — import it explicitly as
``repro.resilience.faults`` (tests and drills do).
"""

from repro.resilience.cancel import (
    NEVER_CANCELLED,
    CancellationToken,
    CompositeToken,
    DeadlineToken,
    FileToken,
    FlagToken,
)
from repro.resilience.errors import (
    ConfigError,
    MechanismPriceError,
    OperationCancelled,
    ReproError,
    ResultCorruption,
    SelectorTimeout,
    TransientIOError,
)
from repro.resilience.journal import RunJournal, config_fingerprint
from repro.resilience.retry import backoff_delays, with_retries

__all__ = [
    "ReproError",
    "ConfigError",
    "SelectorTimeout",
    "MechanismPriceError",
    "ResultCorruption",
    "TransientIOError",
    "OperationCancelled",
    "RunJournal",
    "config_fingerprint",
    "with_retries",
    "backoff_delays",
    "CancellationToken",
    "FlagToken",
    "DeadlineToken",
    "FileToken",
    "CompositeToken",
    "NEVER_CANCELLED",
]
