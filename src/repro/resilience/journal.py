"""The repetition journal: crash-safe checkpoints for long campaigns.

The paper's protocol repeats every configuration up to 100 times; a
journal makes that loop resumable.  One JSONL file per (configuration,
base_seed) records a header line plus one line per *completed*
repetition:

``{"kind": "meta", "format_version": 1, "fingerprint": "..."}``
``{"kind": "rep", "rep": 0, "payload": {...}}``

Appends are atomic at the line level (single ``write`` + ``flush`` +
``fsync``), so a crash can lose at most the repetition in flight — never
a recorded one, and never the file's integrity.  A partial trailing line
(the signature of a crash mid-append) is detected on open and truncated
away; corruption anywhere else raises
:class:`~repro.resilience.errors.ResultCorruption`.

Because repetition seeds are pure functions of ``(base_seed, rep)``
(:func:`repro.simulation.rng.child_seed`), replaying only the missing
repetitions reproduces the uninterrupted campaign bit-identically.

The fingerprint ties a journal to the exact configuration + metric set
that produced it; resuming with a different configuration raises
:class:`~repro.resilience.errors.ConfigError` instead of silently mixing
incompatible repetitions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs.log import get_logger
from repro.resilience.errors import ConfigError, ResultCorruption

log = get_logger("resilience.journal")

FORMAT_VERSION = 1


def config_fingerprint(config: Any, **extra: Any) -> str:
    """A stable hash of a configuration (+ arbitrary context) for journals.

    Dataclasses are canonicalised via ``asdict``; anything non-JSON
    (e.g. a selector instance inside ``selector_kwargs``) falls back to
    ``repr``, which is stable for this library's value-like objects.
    """
    payload: Dict[str, Any] = {"extra": extra}
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload["config"] = dataclasses.asdict(config)
    else:
        payload["config"] = config
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class RunJournal:
    """One campaign's checkpoint file (see module docstring for format).

    Args:
        path: the JSONL journal file; created (with parents) if absent.
        fingerprint: identity of the campaign, from
            :func:`config_fingerprint`.  A mismatch with an existing
            journal raises :class:`ConfigError`.

    Raises:
        ResultCorruption: if an existing journal is damaged beyond the
            recoverable partial-tail case.
    """

    def __init__(self, path: Union[str, Path], fingerprint: str):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._completed: Dict[int, Dict[str, Any]] = {}
        if self.path.exists():
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._append_line(
                {
                    "kind": "meta",
                    "format_version": FORMAT_VERSION,
                    "fingerprint": fingerprint,
                }
            )

    # -- resume ----------------------------------------------------------

    def _load(self) -> None:
        raw = self.path.read_bytes().decode("utf-8", errors="replace")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise ResultCorruption(
                f"{self.path}: journal is empty; delete it and re-run"
            )
        parsed = []
        for index, line in enumerate(lines):
            try:
                parsed.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if index == len(lines) - 1:
                    # A crash mid-append leaves exactly one partial tail
                    # line; drop it — the repetition it described never
                    # completed and will simply be replayed.
                    log.warning(
                        "journal has a partial trailing line "
                        "(crash mid-append); truncating it",
                        extra={
                            "journal": str(self.path),
                            "kept_lines": index,
                        },
                    )
                    self._truncate_to(lines[:index])
                    break
                raise ResultCorruption(
                    f"{self.path}: corrupt journal line {index + 1}; the file "
                    f"is damaged mid-stream — delete it and re-run the "
                    f"campaign from scratch"
                ) from exc
        if not parsed:
            raise ResultCorruption(
                f"{self.path}: no readable journal lines; delete it and re-run"
            )
        meta = parsed[0]
        if meta.get("kind") != "meta" or meta.get("format_version") != FORMAT_VERSION:
            raise ResultCorruption(
                f"{self.path}: not a version-{FORMAT_VERSION} run journal "
                f"(header {meta!r}); delete it and re-run"
            )
        if meta.get("fingerprint") != self.fingerprint:
            raise ConfigError(
                f"{self.path}: journal was written for a different "
                f"configuration (fingerprint {meta.get('fingerprint')!r} != "
                f"{self.fingerprint!r}); point --resume at a fresh directory "
                f"or delete the stale journal"
            )
        for entry in parsed[1:]:
            if entry.get("kind") != "rep" or "rep" not in entry:
                raise ResultCorruption(
                    f"{self.path}: unexpected journal entry {entry!r}; "
                    f"delete the journal and re-run"
                )
            self._completed[int(entry["rep"])] = entry.get("payload", {})
        log.info(
            "journal loaded",
            extra={
                "journal": str(self.path),
                "completed": len(self._completed),
            },
        )

    def _truncate_to(self, keep_lines) -> None:
        """Rewrite the journal without a damaged tail (atomic replace)."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        text = "".join(line + "\n" for line in keep_lines)
        tmp.write_text(text)
        os.replace(tmp, self.path)

    # -- checkpointing ---------------------------------------------------

    def _append_line(self, entry: Dict[str, Any]) -> None:
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self.path.open("a") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def record(self, rep: int, payload: Dict[str, Any]) -> None:
        """Checkpoint one completed repetition (atomic append + fsync)."""
        if rep < 0:
            raise ValueError(f"rep must be non-negative, got {rep}")
        self._append_line({"kind": "rep", "rep": rep, "payload": payload})
        self._completed[rep] = payload

    def get(self, rep: int) -> Optional[Dict[str, Any]]:
        """The journaled payload for repetition ``rep``, or None."""
        return self._completed.get(rep)

    @property
    def completed_reps(self) -> int:
        """How many repetitions the journal has checkpointed."""
        return len(self._completed)

    def first_missing(self, repetitions: int) -> int:
        """The first repetition in ``0..repetitions-1`` not yet journaled
        (== ``repetitions`` when the campaign is complete)."""
        for rep in range(repetitions):
            if rep not in self._completed:
                return rep
        return repetitions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunJournal(path={str(self.path)!r}, "
            f"completed={self.completed_reps})"
        )
